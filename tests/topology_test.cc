// Structural tests for the three topology families, including the exact node/link totals the
// paper reports in Table 2.
#include <gtest/gtest.h>

#include "src/topo/bcube.h"
#include "src/topo/fattree.h"
#include "src/topo/topology.h"
#include "src/topo/vl2.h"

namespace detector {
namespace {

TEST(Topology, AddAndFindLinks) {
  Topology topo("test");
  const NodeId a = topo.AddNode(NodeKind::kTor, 0, 0, "a");
  const NodeId b = topo.AddNode(NodeKind::kAgg, 0, 0, "b");
  const NodeId s = topo.AddNode(NodeKind::kServer, 0, 0, "s");
  const LinkId ab = topo.AddLink(a, b, 1);
  const LinkId as = topo.AddLink(s, a, 0);
  EXPECT_EQ(topo.FindLink(a, b), ab);
  EXPECT_EQ(topo.FindLink(b, a), ab);
  EXPECT_EQ(topo.FindLink(b, s), kInvalidLink);
  EXPECT_TRUE(topo.link(ab).monitored);
  EXPECT_FALSE(topo.link(as).monitored);  // server link
  EXPECT_EQ(topo.OtherEnd(ab, a), b);
  EXPECT_EQ(topo.OtherEnd(ab, b), a);
  EXPECT_EQ(topo.NumMonitoredLinks(), 1u);
}

TEST(Topology, NeighborsTracked) {
  Topology topo("test");
  const NodeId a = topo.AddNode(NodeKind::kTor, 0, 0, "a");
  const NodeId b = topo.AddNode(NodeKind::kAgg, 0, 0, "b");
  const NodeId c = topo.AddNode(NodeKind::kAgg, 0, 1, "c");
  topo.AddLink(a, b, 1);
  topo.AddLink(a, c, 1);
  EXPECT_EQ(topo.NeighborsOf(a).size(), 2u);
  EXPECT_EQ(topo.NeighborsOf(b).size(), 1u);
  EXPECT_EQ(topo.CountNodes(NodeKind::kAgg), 2u);
  EXPECT_EQ(topo.NodesOfKind(NodeKind::kAgg).size(), 2u);
}

// Fat-tree totals. With the canonical k/2 servers per ToR, nodes = 5k^2/4 + k^3/4 and links =
// k^3/2 switch links + k^3/4 server links. The paper's Table 2 lists Fattree(12): 612 nodes,
// 1296 links; Fattree(24): 4176 nodes, 10368 links.
struct FatTreeCase {
  int k;
  size_t nodes;
  size_t links;
};

class FatTreeCounts : public ::testing::TestWithParam<FatTreeCase> {};

TEST_P(FatTreeCounts, MatchPaperTable2) {
  const FatTreeCase& c = GetParam();
  const FatTree ft(c.k);
  EXPECT_EQ(ft.topology().NumNodes(), c.nodes);
  EXPECT_EQ(ft.topology().NumLinks(), c.links);
  EXPECT_EQ(ft.topology().NumMonitoredLinks(),
            static_cast<size_t>(c.k) * c.k * c.k / 2);  // inter-switch links only
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, FatTreeCounts,
                         ::testing::Values(FatTreeCase{4, 36, 48}, FatTreeCase{8, 208, 384},
                                           FatTreeCase{12, 612, 1296},
                                           FatTreeCase{24, 4176, 10368}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k);
                         });

TEST(FatTree, DegreesAreUniform) {
  const FatTree ft(8);
  const Topology& topo = ft.topology();
  for (const NodeId tor : topo.NodesOfKind(NodeKind::kTor)) {
    EXPECT_EQ(topo.NeighborsOf(tor).size(), 8u);  // k/2 up + k/2 servers
  }
  for (const NodeId agg : topo.NodesOfKind(NodeKind::kAgg)) {
    EXPECT_EQ(topo.NeighborsOf(agg).size(), 8u);  // k/2 down + k/2 up
  }
  for (const NodeId core : topo.NodesOfKind(NodeKind::kCore)) {
    EXPECT_EQ(topo.NeighborsOf(core).size(), 8u);  // one agg per pod
  }
}

TEST(FatTree, LinkIdArithmeticMatchesGraph) {
  const FatTree ft(6);
  const Topology& topo = ft.topology();
  for (int p = 0; p < 6; ++p) {
    for (int e = 0; e < 3; ++e) {
      for (int a = 0; a < 3; ++a) {
        EXPECT_EQ(ft.EdgeAggLink(p, e, a), topo.FindLink(ft.Tor(p, e), ft.Agg(p, a)));
      }
      for (int j = 0; j < 3; ++j) {
        EXPECT_EQ(ft.AggCoreLink(p, e, j), topo.FindLink(ft.Agg(p, e), ft.Core(e, j)));
      }
    }
  }
}

TEST(FatTree, TorCoordinateRoundTrip) {
  const FatTree ft(8);
  for (int p = 0; p < 8; ++p) {
    for (int e = 0; e < 4; ++e) {
      const auto coord = ft.TorCoordOf(ft.Tor(p, e));
      EXPECT_EQ(coord.pod, p);
      EXPECT_EQ(coord.e, e);
    }
  }
  EXPECT_EQ(ft.TorOfServer(ft.Server(3, 2, 1)), ft.Tor(3, 2));
  EXPECT_EQ(ft.Tors().size(), 32u);
}

TEST(FatTree, OddArityRejected) { EXPECT_DEATH(FatTree ft(5), "even"); }

// VL2 totals from Table 2: VL2(20,12,20): 1282 nodes, 1440 links; VL2(40,24,40): 9884 / 10560.
struct Vl2Case {
  int da;
  int di;
  int servers;
  size_t nodes;
  size_t links;
};

class Vl2Counts : public ::testing::TestWithParam<Vl2Case> {};

TEST_P(Vl2Counts, MatchPaperTable2) {
  const Vl2Case& c = GetParam();
  const Vl2 vl2(c.da, c.di, c.servers);
  EXPECT_EQ(vl2.topology().NumNodes(), c.nodes);
  EXPECT_EQ(vl2.topology().NumLinks(), c.links);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, Vl2Counts,
                         ::testing::Values(Vl2Case{20, 12, 20, 1282, 1440},
                                           Vl2Case{40, 24, 40, 9884, 10560},
                                           Vl2Case{8, 4, 2, 32, 48}),
                         [](const auto& info) {
                           return "da" + std::to_string(info.param.da) + "di" +
                                  std::to_string(info.param.di);
                         });

TEST(Vl2, AggregationDegreesBalanced) {
  const Vl2 vl2(20, 12, 20);
  const Topology& topo = vl2.topology();
  for (const NodeId agg : topo.NodesOfKind(NodeKind::kAgg)) {
    // D_A/2 ToR links + D_A/2 intermediate links.
    EXPECT_EQ(topo.NeighborsOf(agg).size(), 20u);
  }
  for (const NodeId inter : topo.NodesOfKind(NodeKind::kIntermediate)) {
    EXPECT_EQ(topo.NeighborsOf(inter).size(), 12u);  // D_I aggs
  }
  for (const NodeId tor : topo.NodesOfKind(NodeKind::kTor)) {
    EXPECT_EQ(topo.NeighborsOf(tor).size(), 22u);  // 2 aggs + 20 servers
  }
}

TEST(Vl2, TorHomedToTwoDistinctAggs) {
  const Vl2 vl2(8, 4, 2);
  for (int t = 0; t < vl2.num_tors(); ++t) {
    const auto [a0, a1] = vl2.AggsOfTor(t);
    EXPECT_NE(a0, a1);
    EXPECT_EQ(vl2.TorAggLink(t, 0), vl2.topology().FindLink(vl2.Tor(t), vl2.Agg(a0)));
    EXPECT_EQ(vl2.TorAggLink(t, 1), vl2.topology().FindLink(vl2.Tor(t), vl2.Agg(a1)));
  }
}

// BCube totals from Table 2: BCube(4,2): 112/192, BCube(8,2): 704/1536, BCube(8,4): 53248/163840.
struct BcubeCase {
  int n;
  int k;
  size_t nodes;
  size_t links;
};

class BcubeCounts : public ::testing::TestWithParam<BcubeCase> {};

TEST_P(BcubeCounts, MatchPaperTable2) {
  const BcubeCase& c = GetParam();
  const Bcube bc(c.n, c.k);
  EXPECT_EQ(bc.topology().NumNodes(), c.nodes);
  EXPECT_EQ(bc.topology().NumLinks(), c.links);
  // BCube is server-centric: every link participates in the probe matrix.
  EXPECT_EQ(bc.topology().NumMonitoredLinks(), c.links);
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, BcubeCounts,
                         ::testing::Values(BcubeCase{4, 2, 112, 192}, BcubeCase{8, 2, 704, 1536},
                                           BcubeCase{4, 1, 24, 32}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "k" +
                                  std::to_string(info.param.k);
                         });

TEST(Bcube, DigitHelpers) {
  const Bcube bc(4, 2);
  const int addr = 1 * 16 + 2 * 4 + 3;  // digits (1, 2, 3)
  EXPECT_EQ(bc.Digit(addr, 0), 3);
  EXPECT_EQ(bc.Digit(addr, 1), 2);
  EXPECT_EQ(bc.Digit(addr, 2), 1);
  EXPECT_EQ(bc.Digit(bc.WithDigit(addr, 1, 0), 1), 0);
  EXPECT_EQ(bc.WithDigit(addr, 1, 2), addr);
}

TEST(Bcube, ServerSwitchAdjacency) {
  const Bcube bc(4, 1);
  const Topology& topo = bc.topology();
  // Every server has k+1 = 2 links; every switch has n = 4.
  for (int addr = 0; addr < bc.num_servers(); ++addr) {
    EXPECT_EQ(topo.NeighborsOf(bc.Server(addr)).size(), 2u);
  }
  for (int level = 0; level <= 1; ++level) {
    for (int w = 0; w < bc.switches_per_level(); ++w) {
      EXPECT_EQ(topo.NeighborsOf(bc.Switch(level, w)).size(), 4u);
    }
  }
  // Link id arithmetic agrees with the graph.
  for (int addr = 0; addr < bc.num_servers(); ++addr) {
    for (int level = 0; level <= 1; ++level) {
      EXPECT_EQ(bc.ServerSwitchLink(addr, level),
                topo.FindLink(bc.Server(addr), bc.Switch(level, bc.SwitchIndexOf(addr, level))));
    }
  }
}

TEST(Bcube, ServersSharingSwitchDifferInOneDigit) {
  const Bcube bc(4, 2);
  // Servers adjacent to the same level-l switch agree on all digits except digit l.
  const NodeId sw = bc.Switch(1, 5);
  std::vector<int> members;
  for (const Neighbor& nb : bc.topology().NeighborsOf(sw)) {
    members.push_back(bc.AddressOfServer(nb.node));
  }
  ASSERT_EQ(members.size(), 4u);
  for (size_t i = 1; i < members.size(); ++i) {
    EXPECT_EQ(bc.WithDigit(members[i], 1, 0), bc.WithDigit(members[0], 1, 0));
    EXPECT_NE(bc.Digit(members[i], 1), bc.Digit(members[i - 1], 1));
  }
}

}  // namespace
}  // namespace detector
