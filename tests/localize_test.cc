// Localization algorithm tests: PLL behavior on crafted observation patterns (full loss,
// partial loss, hit-ratio filtering, noise suppression), the Tomo/SCORE/OMP baselines, and the
// evaluation metrics.
#include <gtest/gtest.h>

#include "src/localize/metrics.h"
#include "src/localize/omp.h"
#include "src/localize/pll.h"
#include "src/localize/preprocess.h"
#include "src/localize/score.h"
#include "src/localize/tomo.h"
#include "src/pmc/identifiability.h"
#include "src/pmc/pmc.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/probe_engine.h"

namespace detector {
namespace {

// Small crafted universe: 4 links, one probe path per subset we care about.
struct ToyMatrix {
  Topology topo{"toy"};
  std::vector<LinkId> links;
  PathStore store;

  explicit ToyMatrix(int n) {
    std::vector<NodeId> nodes;
    for (int i = 0; i <= n; ++i) {
      nodes.push_back(topo.AddNode(NodeKind::kTor, 0, i, "n" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      links.push_back(topo.AddLink(nodes[static_cast<size_t>(i)],
                                   nodes[static_cast<size_t>(i) + 1], 1));
    }
  }

  void AddPath(std::vector<LinkId> path_links) { store.Add(0, 1, path_links); }

  ProbeMatrix Matrix() { return ProbeMatrix(std::move(store), LinkIndex::ForMonitored(topo)); }
};

TEST(Preprocess, FiltersNoiseAndOutliers) {
  Observations obs{{1000, 0}, {1000, 1}, {1000, 500}, {0, 0}, {1000, 100}};
  std::vector<uint8_t> outliers{0, 0, 0, 0, 1};
  PreprocessOptions options;
  options.path_loss_ratio_threshold = 1e-3;
  const auto pre = Preprocess(obs, options, outliers);
  EXPECT_EQ(pre.valid, (std::vector<uint8_t>{1, 1, 1, 0, 0}));
  // Path 1 lost exactly 1/1000 = threshold, not above it => clean.
  EXPECT_EQ(pre.lossy, (std::vector<uint8_t>{0, 0, 1, 0, 0}));
  EXPECT_EQ(pre.num_lossy, 1);
  EXPECT_EQ(pre.num_valid, 3);
}

TEST(Pll, SingleFullLossLocalized) {
  ToyMatrix toy(3);
  toy.AddPath({0, 1});
  toy.AddPath({1, 2});
  toy.AddPath({2});
  ProbeMatrix matrix = toy.Matrix();
  // Link 1 fails: both paths through it lose everything; path {2} is clean.
  Observations obs{{300, 300}, {300, 300}, {300, 0}};
  const PllLocalizer pll;
  const auto result = pll.Localize(matrix, obs);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, 1);
  EXPECT_GT(result.links[0].estimated_loss_rate, 0.9);
}

TEST(Pll, NoLossNoSuspects) {
  ToyMatrix toy(2);
  toy.AddPath({0});
  toy.AddPath({1});
  ProbeMatrix matrix = toy.Matrix();
  Observations obs{{300, 0}, {300, 0}};
  EXPECT_TRUE(PllLocalizer().Localize(matrix, obs).links.empty());
}

TEST(Pll, AmbientNoiseFilteredOut) {
  ToyMatrix toy(2);
  toy.AddPath({0});
  toy.AddPath({1});
  ProbeMatrix matrix = toy.Matrix();
  // 1e-4-ish loss: below the 1e-3 pre-processing threshold => no alarms (§5.1).
  Observations obs{{10000, 1}, {10000, 2}};
  EXPECT_TRUE(PllLocalizer().Localize(matrix, obs).links.empty());
}

TEST(Pll, PartialLossStillLocalized) {
  // Blackhole on link 1 drops flows on two of its three paths; the third is clean. Links 0 and
  // 4 each carry one lossy path but fall under the 0.6 hit-ratio bar (1 lossy / 2 valid), while
  // link 1 clears it (2/3) and explains the most losses.
  ToyMatrix toy(5);
  toy.AddPath({0, 1});  // lossy (blackholed flow)
  toy.AddPath({1, 4});  // lossy (blackholed flow)
  toy.AddPath({1, 2});  // clean flow through the same link
  toy.AddPath({0});     // clean
  toy.AddPath({4});     // clean
  ProbeMatrix matrix = toy.Matrix();
  Observations obs{{300, 150}, {300, 140}, {300, 0}, {300, 0}, {300, 0}};
  const auto result = PllLocalizer().Localize(matrix, obs);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, 1);
  EXPECT_NEAR(result.links[0].hit_ratio, 2.0 / 3.0, 1e-9);
}

TEST(Pll, HitRatioThresholdSuppressesInnocentSharedLink) {
  // Link 0 is shared by 5 paths, only one lossy (the culprit is link 3, private to that path).
  ToyMatrix toy(4);
  toy.AddPath({0, 3});  // lossy
  toy.AddPath({0, 1});
  toy.AddPath({0, 1});
  toy.AddPath({0, 2});
  toy.AddPath({0, 2});
  ProbeMatrix matrix = toy.Matrix();
  Observations obs{{300, 290}, {300, 0}, {300, 0}, {300, 0}, {300, 0}};
  const auto result = PllLocalizer().Localize(matrix, obs);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, 3);  // link 0's hit ratio 1/5 < 0.6: filtered
}

TEST(Pll, TwoSimultaneousFailures) {
  ToyMatrix toy(4);
  toy.AddPath({0, 1});
  toy.AddPath({1, 2});
  toy.AddPath({2, 3});
  toy.AddPath({3, 0});
  ProbeMatrix matrix = toy.Matrix();
  // Links 1 and 3 fail fully.
  Observations obs{{300, 300}, {300, 300}, {300, 300}, {300, 300}};
  const auto result = PllLocalizer().Localize(matrix, obs);
  // All four paths lossy; the greedy needs two links to explain them.
  ASSERT_EQ(result.links.size(), 2u);
  // The chosen pair must cover all paths: {1,3} or {0,2}.
  const LinkId a = result.links[0].link;
  const LinkId b = result.links[1].link;
  EXPECT_TRUE((a == 1 && b == 3) || (a == 3 && b == 1) || (a == 0 && b == 2) ||
              (a == 2 && b == 0));
}

TEST(Pll, OutlierPathsExcluded) {
  ToyMatrix toy(2);
  toy.AddPath({0});
  toy.AddPath({1});
  ProbeMatrix matrix = toy.Matrix();
  Observations obs{{300, 300}, {300, 0}};
  std::vector<uint8_t> outliers{1, 0};  // the lossy path came from a rebooting pinger
  const auto result = PllLocalizer().LocalizeWithOutliers(matrix, obs, outliers);
  EXPECT_TRUE(result.links.empty());
}

TEST(Pll, LossRateEstimateInvertsRoundTrip) {
  // One link, one path: per-traversal rate p makes path loss 1-(1-p)^2.
  ToyMatrix toy(1);
  toy.AddPath({0});
  ProbeMatrix matrix = toy.Matrix();
  const double p = 0.2;
  const double path_loss = 1.0 - (1.0 - p) * (1.0 - p);
  Observations obs{{100000, static_cast<int64_t>(100000 * path_loss)}};
  const auto result = PllLocalizer().Localize(matrix, obs);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_NEAR(result.links[0].estimated_loss_rate, p, 0.02);
}

TEST(InvertRoundTripLoss, Endpoints) {
  EXPECT_DOUBLE_EQ(InvertRoundTripLoss(0.0), 0.0);
  EXPECT_DOUBLE_EQ(InvertRoundTripLoss(1.0), 1.0);
  EXPECT_NEAR(InvertRoundTripLoss(0.19), 0.1, 1e-9);
}

TEST(Tomo, FullLossLocalized) {
  ToyMatrix toy(3);
  toy.AddPath({0, 1});
  toy.AddPath({1, 2});
  toy.AddPath({0});
  toy.AddPath({2});
  ProbeMatrix matrix = toy.Matrix();
  Observations obs{{300, 300}, {300, 300}, {300, 0}, {300, 0}};
  const auto result = TomoLocalizer().Localize(matrix, obs);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, 1);
}

TEST(Tomo, PartialLossBreaksClassicAssumption) {
  // The blackhole spares one of link 1's paths; that clean path "certifies" link 1 good under
  // the classic assumption, so Tomo cannot name the culprit — PLL's motivation (§5.2).
  ToyMatrix toy(5);
  toy.AddPath({0, 1});  // lossy (blackholed flow)
  toy.AddPath({1, 4});  // lossy (blackholed flow)
  toy.AddPath({1, 2});  // clean flow through the same link => Tomo certifies link 1 good
  toy.AddPath({0});     // clean
  toy.AddPath({4});     // clean
  ProbeMatrix matrix = toy.Matrix();
  Observations obs{{300, 150}, {300, 140}, {300, 0}, {300, 0}, {300, 0}};
  const auto tomo = TomoLocalizer().Localize(matrix, obs);
  EXPECT_TRUE(tomo.links.empty());
  const auto pll = PllLocalizer().Localize(matrix, obs);
  ASSERT_EQ(pll.links.size(), 1u);
  EXPECT_EQ(pll.links[0].link, 1);
}

TEST(Score, PicksHighestUtilizationGroup) {
  ToyMatrix toy(3);
  toy.AddPath({0, 1});
  toy.AddPath({0, 1});
  toy.AddPath({1, 2});
  toy.AddPath({2});
  ProbeMatrix matrix = toy.Matrix();
  // Link 1 fails fully: its 3 paths all lossy; link 2's utilization is 1/2.
  Observations obs{{300, 300}, {300, 300}, {300, 300}, {300, 0}};
  const auto result = ScoreLocalizer().Localize(matrix, obs);
  ASSERT_GE(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, 1);
}

TEST(Omp, RecoverstTwoSparseFailures) {
  ToyMatrix toy(4);
  toy.AddPath({0});
  toy.AddPath({1});
  toy.AddPath({2});
  toy.AddPath({3});
  toy.AddPath({0, 1});
  toy.AddPath({2, 3});
  ProbeMatrix matrix = toy.Matrix();
  // Links 1 and 2 fail with moderate random loss.
  auto lossy = [](double p) { return static_cast<int64_t>(10000 * (1 - (1 - p) * (1 - p))); };
  Observations obs{{10000, 0},        {10000, lossy(0.3)}, {10000, lossy(0.2)},
                   {10000, 0},        {10000, lossy(0.3)}, {10000, lossy(0.2)}};
  const auto result = OmpLocalizer().Localize(matrix, obs);
  std::vector<LinkId> flagged;
  for (const auto& s : result.links) {
    flagged.push_back(s.link);
  }
  std::sort(flagged.begin(), flagged.end());
  EXPECT_EQ(flagged, (std::vector<LinkId>{1, 2}));
}

TEST(Metrics, ConfusionAgainstTruth) {
  std::vector<SuspectLink> suspects(3);
  suspects[0].link = 1;
  suspects[1].link = 2;
  suspects[2].link = 9;
  const std::vector<LinkId> truth{1, 2, 3};
  const auto counts = EvaluateLocalization(suspects, truth);
  EXPECT_EQ(counts.true_positives, 2);
  EXPECT_EQ(counts.false_positives, 1);
  EXPECT_EQ(counts.false_negatives, 1);
  EXPECT_NEAR(counts.Accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(counts.FalsePositiveRatio(), 1.0 / 3.0, 1e-12);
}

TEST(Metrics, DuplicateSuspectsCountedOnce) {
  std::vector<SuspectLink> suspects(2);
  suspects[0].link = 5;
  suspects[1].link = 5;
  const std::vector<LinkId> truth{5};
  const auto counts = EvaluateLocalization(suspects, truth);
  EXPECT_EQ(counts.true_positives, 1);
  EXPECT_EQ(counts.false_positives, 0);
}

// End-to-end: simulate probes over a PMC matrix and check PLL finds an injected failure.
TEST(PllEndToEnd, FatTreeSingleFailure) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 3;
  pmc.beta = 1;
  const PmcResult built = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc);
  const ProbeMatrix& matrix = built.matrix;

  FailureScenario scenario;
  LinkFailure failure;
  failure.link = ft.AggCoreLink(1, 0, 1);
  failure.type = FailureType::kRandomPartial;
  failure.loss_rate = 0.5;
  scenario.failures.push_back(failure);

  ProbeEngine engine(ft.topology(), scenario, ProbeConfig{});
  Rng rng(1234);
  Observations obs(matrix.NumPaths());
  for (size_t p = 0; p < matrix.NumPaths(); ++p) {
    const PathId pid = static_cast<PathId>(p);
    obs[p] = engine.SimulatePath(matrix.paths().Links(pid), matrix.paths().src(pid),
                                 matrix.paths().dst(pid), 100, rng);
  }
  const auto result = PllLocalizer().Localize(matrix, obs);
  ASSERT_GE(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, failure.link);
  EXPECT_NEAR(result.links[0].estimated_loss_rate, 0.5, 0.15);
}

}  // namespace
}  // namespace detector
