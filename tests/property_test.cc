// Property-style parameterized sweeps: probe-matrix invariants across (k, alpha, beta)
// configurations, and localization accuracy under randomized multi-failure scenarios — the
// workhorse suite that pins the paper's qualitative claims across a grid of settings.
#include <gtest/gtest.h>

#include <tuple>

#include "src/localize/metrics.h"
#include "src/localize/pll.h"
#include "src/pmc/identifiability.h"
#include "src/pmc/pmc.h"
#include "src/pmc/structured_fattree.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/failure_model.h"
#include "src/sim/probe_engine.h"

namespace detector {
namespace {

// ---------- Probe-matrix invariants over a (k, alpha, beta) grid ----------

using MatrixParam = std::tuple<int, int, int>;  // k, alpha, beta

class ProbeMatrixInvariants : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(ProbeMatrixInvariants, CoverageEvennessIdentifiability) {
  const auto [k, alpha, beta] = GetParam();
  const FatTree ft(k);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = alpha;
  options.beta = beta;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);

  // Invariant 1: alpha-coverage.
  EXPECT_TRUE(result.stats.alpha_satisfied);
  EXPECT_GE(result.matrix.Coverage().min, alpha);
  // Invariant 2: all selected paths are real candidate paths over monitored links.
  for (size_t p = 0; p < result.matrix.NumPaths(); ++p) {
    for (LinkId l : result.matrix.paths().Links(static_cast<PathId>(p))) {
      EXPECT_TRUE(ft.topology().link(l).monitored);
    }
  }
  // Invariant 3: requested identifiability achieved (k=4 cannot reach beta=2; grid avoids it).
  if (beta >= 1) {
    EXPECT_GE(VerifyIdentifiability(result.matrix, beta).achieved_beta, beta);
  }
  // Invariant 4: selection is a small fraction of the universe.
  EXPECT_LT(result.stats.num_selected, result.stats.num_candidates);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProbeMatrixInvariants,
    ::testing::Values(MatrixParam{4, 1, 0}, MatrixParam{4, 2, 1}, MatrixParam{4, 3, 1},
                      MatrixParam{6, 1, 1}, MatrixParam{6, 2, 2}, MatrixParam{6, 1, 2},
                      MatrixParam{8, 1, 1}, MatrixParam{8, 2, 1}, MatrixParam{8, 1, 2}),
    [](const auto& info) {
      return "k" + std::to_string(std::get<0>(info.param)) + "a" +
             std::to_string(std::get<1>(info.param)) + "b" +
             std::to_string(std::get<2>(info.param));
    });

// ---------- Localization accuracy under randomized failures ----------

struct LocalizationCase {
  int k;
  int num_failures;
  int beta;
  double min_accuracy;
};

class RandomizedLocalization : public ::testing::TestWithParam<LocalizationCase> {};

TEST_P(RandomizedLocalization, AccuracyAboveFloor) {
  const auto [k, num_failures, beta, min_accuracy] = GetParam();
  const FatTree ft(k);
  ProbeMatrix matrix = StructuredFatTreeProbeMatrix(ft, /*alpha=*/2, beta);

  FailureModelOptions fm_options;
  // Keep loss rates detectable within a test-sized window; ultra-low-rate false negatives are
  // exercised separately in the Table 5 bench.
  fm_options.min_loss_rate = 0.05;
  FailureModel model(ft.topology(), fm_options);
  ProbeConfig probe;
  ProbeEngine healthy(ft.topology(), FailureScenario{}, probe);

  Rng rng(static_cast<uint64_t>(k * 1000 + num_failures * 10 + beta));
  ConfusionCounts totals;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const FailureScenario scenario = model.SampleLinkFailures(num_failures, rng);
    ProbeEngine engine(ft.topology(), scenario, probe);
    Observations obs(matrix.NumPaths());
    for (size_t p = 0; p < matrix.NumPaths(); ++p) {
      const PathId pid = static_cast<PathId>(p);
      obs[p] = engine.SimulatePath(matrix.paths().Links(pid), matrix.paths().src(pid),
                                   matrix.paths().dst(pid), 120, rng);
    }
    const auto result = PllLocalizer().Localize(matrix, obs);
    totals += EvaluateLocalization(result.links, scenario.FailedLinks());
  }
  EXPECT_GE(totals.Accuracy(), min_accuracy)
      << "TP=" << totals.true_positives << " FP=" << totals.false_positives
      << " FN=" << totals.false_negatives;
  EXPECT_LE(totals.FalsePositiveRatio(), 0.1);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RandomizedLocalization,
    ::testing::Values(LocalizationCase{6, 1, 1, 0.9}, LocalizationCase{6, 3, 1, 0.8},
                      LocalizationCase{6, 3, 2, 0.9}, LocalizationCase{8, 1, 1, 0.9},
                      LocalizationCase{8, 5, 2, 0.85}, LocalizationCase{10, 5, 2, 0.85}),
    [](const auto& info) {
      return "k" + std::to_string(info.param.k) + "f" + std::to_string(info.param.num_failures) +
             "b" + std::to_string(info.param.beta);
    });

// ---------- Identifiability level vs accuracy ordering (Table 4's qualitative claim) ----------

TEST(IdentifiabilityVsAccuracy, HigherBetaNeverHurts) {
  const int k = 6;
  const FatTree ft(k);
  FailureModelOptions fm_options;
  fm_options.min_loss_rate = 0.05;
  FailureModel model(ft.topology(), fm_options);
  ProbeConfig probe;

  double accuracy_by_beta[3] = {0, 0, 0};
  for (int beta = 0; beta <= 2; ++beta) {
    ProbeMatrix matrix = StructuredFatTreeProbeMatrix(ft, /*alpha=*/1, beta);
    Rng rng(4242);
    ConfusionCounts totals;
    for (int t = 0; t < 15; ++t) {
      const FailureScenario scenario = model.SampleLinkFailures(4, rng);
      ProbeEngine engine(ft.topology(), scenario, probe);
      Observations obs(matrix.NumPaths());
      for (size_t p = 0; p < matrix.NumPaths(); ++p) {
        const PathId pid = static_cast<PathId>(p);
        obs[p] = engine.SimulatePath(matrix.paths().Links(pid), matrix.paths().src(pid),
                                     matrix.paths().dst(pid), 120, rng);
      }
      totals += EvaluateLocalization(PllLocalizer().Localize(matrix, obs).links,
                                     scenario.FailedLinks());
    }
    accuracy_by_beta[beta] = totals.Accuracy();
  }
  // The paper's Table 4 trend: identifiability buys accuracy.
  EXPECT_GT(accuracy_by_beta[1], accuracy_by_beta[0]);
  EXPECT_GE(accuracy_by_beta[2] + 0.05, accuracy_by_beta[1]);  // beta=2 at least comparable
}

// ---------- Probe engine distributional property across port entropy ----------

class PortEntropySweep : public ::testing::TestWithParam<int> {};

TEST_P(PortEntropySweep, BlackholeVisibilityGrowsWithPorts) {
  // With more source ports per path, the chance that at least one flow hits a blackhole rule
  // grows. A blackhole verdict is deterministic per flow, so the randomness to average over is
  // the rule itself: each trial draws a fresh rule seed (a different misprogrammed match).
  const int ports = GetParam();
  const FatTree ft(4);
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  config.port_count = ports;
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0)};
  Rng rng(static_cast<uint64_t>(ports));
  int rules_detected = 0;
  const int trials = 80;
  for (int t = 0; t < trials; ++t) {
    LinkFailure f;
    f.link = ft.EdgeAggLink(0, 0, 0);
    f.type = FailureType::kDeterministicPartial;
    f.match_fraction = 0.3;
    f.rule_seed = static_cast<uint64_t>(t) * 7919 + 13;
    FailureScenario scenario;
    scenario.failures.push_back(f);
    ProbeEngine engine(ft.topology(), scenario, config);
    const auto obs = engine.SimulatePath(path, ft.Tor(0, 0), ft.Agg(0, 0), ports * 10, rng);
    rules_detected += obs.lost > 0 ? 1 : 0;
  }
  // Request + reply flows: 2*ports independent 0.3-match draws per rule.
  const double expect_hit = 1.0 - std::pow(0.7, 2 * ports);
  EXPECT_NEAR(rules_detected / static_cast<double>(trials), expect_hit, 0.25);
  if (ports >= 8) {
    EXPECT_GT(rules_detected, trials * 3 / 4);
  }
}

INSTANTIATE_TEST_SUITE_P(Ports, PortEntropySweep, ::testing::Values(1, 2, 4, 8, 16),
                         [](const auto& info) { return "p" + std::to_string(info.param); });

}  // namespace
}  // namespace detector
