// Tests for the extended-link (virtual link) space: rank bijectivity and the on-path
// enumeration (each extended link intersecting a path reported exactly once), verified against
// brute force.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/pmc/virtual_links.h"

namespace detector {
namespace {

TEST(VirtualLinks, CountsMatchBinomials) {
  EXPECT_EQ(ExtendedLinkSpace::CountExtended(10, 0), 10u);
  EXPECT_EQ(ExtendedLinkSpace::CountExtended(10, 1), 10u);
  EXPECT_EQ(ExtendedLinkSpace::CountExtended(10, 2), 10u + 45u);
  EXPECT_EQ(ExtendedLinkSpace::CountExtended(10, 3), 10u + 45u + 120u);
  EXPECT_EQ(ExtendedLinkSpace::CountExtended(0, 3), 0u);
}

TEST(VirtualLinks, PairRankIsBijective) {
  const int32_t n = 17;
  const ExtendedLinkSpace space(n, 2);
  std::set<uint64_t> ranks;
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = i + 1; j < n; ++j) {
      const uint64_t r = space.PairRank(i, j);
      EXPECT_LT(r, space.num_pairs());
      EXPECT_TRUE(ranks.insert(r).second) << "duplicate rank for (" << i << "," << j << ")";
    }
  }
  EXPECT_EQ(ranks.size(), space.num_pairs());
  // Ranks are dense: 0..C(n,2)-1.
  EXPECT_EQ(*ranks.begin(), 0u);
  EXPECT_EQ(*ranks.rbegin(), space.num_pairs() - 1);
}

TEST(VirtualLinks, TripleRankIsBijective) {
  const int32_t n = 13;
  const ExtendedLinkSpace space(n, 3);
  std::set<uint64_t> ranks;
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = i + 1; j < n; ++j) {
      for (int32_t k = j + 1; k < n; ++k) {
        const uint64_t r = space.TripleRank(i, j, k);
        EXPECT_LT(r, space.num_triples());
        EXPECT_TRUE(ranks.insert(r).second);
      }
    }
  }
  EXPECT_EQ(ranks.size(), space.num_triples());
  EXPECT_EQ(*ranks.rbegin(), space.num_triples() - 1);
}

// Brute-force reference: every extended link with >= 1 constituent on the path.
std::set<uint64_t> BruteForceOnPath(const ExtendedLinkSpace& space,
                                    const std::set<int32_t>& path) {
  std::set<uint64_t> expected;
  const int32_t n = space.n();
  for (int32_t i : path) {
    expected.insert(space.RankSingle(i));
  }
  if (space.beta() >= 2) {
    for (int32_t i = 0; i < n; ++i) {
      for (int32_t j = i + 1; j < n; ++j) {
        if (path.count(i) || path.count(j)) {
          expected.insert(space.RankPair(i, j));
        }
      }
    }
  }
  if (space.beta() >= 3) {
    for (int32_t i = 0; i < n; ++i) {
      for (int32_t j = i + 1; j < n; ++j) {
        for (int32_t k = j + 1; k < n; ++k) {
          if (path.count(i) || path.count(j) || path.count(k)) {
            expected.insert(space.RankTriple(i, j, k));
          }
        }
      }
    }
  }
  return expected;
}

class ForEachOnPathVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(ForEachOnPathVsBruteForce, ExactlyOncePerIntersectingExtendedLink) {
  const int beta = GetParam();
  const int32_t n = 11;
  const ExtendedLinkSpace space(n, beta);
  const std::vector<std::vector<int32_t>> paths{
      {0}, {0, 1}, {3, 7, 10}, {0, 5, 9, 10}, {2, 3, 4, 5}, {10}, {0, 1, 2, 3, 4, 5}};
  for (const auto& path_links : paths) {
    std::vector<uint8_t> on_path(static_cast<size_t>(n), 0);
    for (int32_t l : path_links) {
      on_path[static_cast<size_t>(l)] = 1;
    }
    std::map<uint64_t, int> reported;
    space.ForEachOnPath(path_links, on_path, [&](uint64_t ext) { ++reported[ext]; });
    for (const auto& [ext, count] : reported) {
      EXPECT_EQ(count, 1) << "extended link " << ext << " reported " << count << " times";
    }
    const std::set<int32_t> path_set(path_links.begin(), path_links.end());
    const std::set<uint64_t> expected = BruteForceOnPath(space, path_set);
    std::set<uint64_t> got;
    for (const auto& [ext, count] : reported) {
      got.insert(ext);
    }
    EXPECT_EQ(got, expected) << "beta=" << beta;
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, ForEachOnPathVsBruteForce, ::testing::Values(1, 2, 3),
                         [](const auto& info) { return "beta" + std::to_string(info.param); });

TEST(VirtualLinks, BetaZeroAndOneHaveNoVirtuals) {
  const ExtendedLinkSpace s0(20, 0);
  EXPECT_EQ(s0.num_extended(), 20u);
  const ExtendedLinkSpace s1(20, 1);
  EXPECT_EQ(s1.num_extended(), 20u);
  EXPECT_EQ(s1.num_pairs(), 0u);
}

}  // namespace
}  // namespace detector
