// History-plane tests (PR 9): the WindowLog on-disk format must fail loudly and recover at
// record boundaries (truncation at every byte offset, garbage-tail fuzz, version and key
// mismatch, reopen-and-append), retention must rotate and bound segments, and — the acceptance
// gate — replaying a logged window range through QueryEngine must reproduce the live run's
// suspect sets bit-identically at every diagnosis boundary, in direct and report-plane modes.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/detector/system.h"
#include "src/history/query.h"
#include "src/history/window_log.h"
#include "src/history/window_sink.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

namespace fs = std::filesystem;

// Fresh empty directory under the system temp dir, unique per call within the process.
std::string TempLogDir(const std::string& tag) {
  static int counter = 0;
  const fs::path dir = fs::temp_directory_path() /
                       ("detector_history_" + tag + "_" + std::to_string(counter++));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

SealedWindow SampleWindow(uint64_t index) {
  SealedWindow w;
  w.window_index = index;
  w.num_slots = 900;
  w.churn_events = 2;
  w.dead_links = 1;
  w.probes_sent = 123456;
  w.bytes_sent = 123456 * 64;
  SealedBoundary b1;
  b1.segment = 2;
  b1.time_seconds = 10.0;
  b1.deltas.push_back(SealedDelta{3, 500, 12});
  b1.deltas.push_back(SealedDelta{7, 480, 0});
  b1.deltas.push_back(SealedDelta{899, 505, 505});
  b1.suspects.push_back(SuspectLink{/*link=*/11, /*estimated_loss_rate=*/0.25,
                                    /*hit_ratio=*/0.9, /*explained_losses=*/12});
  b1.alarms.push_back(ServerLinkAlarm{/*pinger=*/4, /*target=*/5, /*loss_ratio=*/1.0});
  SealedBoundary b2;
  b2.segment = 6;
  b2.time_seconds = 30.0;
  // Negative deltas: a watchdog flip retracting totals must survive the round trip.
  b2.deltas.push_back(SealedDelta{3, -500, -12});
  b2.deltas.push_back(SealedDelta{42, 1000, 3});
  w.boundaries.push_back(b1);
  w.boundaries.push_back(b2);
  return w;
}

TEST(WindowLogFormat, RecordRoundTrip) {
  const ReportKey key;
  for (const uint64_t index : {uint64_t{0}, uint64_t{7}, uint64_t{1} << 40}) {
    const SealedWindow w = SampleWindow(index);
    std::vector<uint8_t> bytes;
    EncodeWindowRecord(w, key, bytes);
    size_t pos = 0;
    SealedWindow back;
    ASSERT_EQ(DecodeWindowRecord(bytes, pos, key, back), WindowLogStatus::kOk);
    EXPECT_EQ(pos, bytes.size());
    EXPECT_EQ(back, w);
  }
  // Empty window (no boundaries) round-trips too.
  SealedWindow empty;
  empty.window_index = 3;
  std::vector<uint8_t> bytes;
  EncodeWindowRecord(empty, key, bytes);
  size_t pos = 0;
  SealedWindow back;
  ASSERT_EQ(DecodeWindowRecord(bytes, pos, key, back), WindowLogStatus::kOk);
  EXPECT_EQ(back, empty);
}

// Truncating the byte stream at every offset must either decode the full record (no
// truncation hit it) or report kTruncated with pos untouched — never crash, never
// half-decode.
TEST(WindowLogFormat, EveryTruncationRecoversAtTheRecordBoundary) {
  const ReportKey key;
  std::vector<uint8_t> bytes;
  EncodeWindowRecord(SampleWindow(1), key, bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    const std::span<const uint8_t> prefix(bytes.data(), cut);
    size_t pos = 0;
    SealedWindow out;
    EXPECT_EQ(DecodeWindowRecord(prefix, pos, key, out), WindowLogStatus::kTruncated)
        << "cut=" << cut;
    EXPECT_EQ(pos, 0u) << "cut=" << cut;
  }
}

// A multi-record segment truncated at every offset keeps exactly the whole-record prefix.
TEST(WindowLogFormat, SegmentTruncationKeepsWholeRecordPrefix) {
  const ReportKey key;
  std::vector<uint8_t> bytes(kSegmentHeader, kSegmentHeader + sizeof(kSegmentHeader));
  std::vector<size_t> record_ends;
  for (uint64_t i = 0; i < 3; ++i) {
    EncodeWindowRecord(SampleWindow(i), key, bytes);
    record_ends.push_back(bytes.size());
  }
  for (size_t cut = sizeof(kSegmentHeader); cut <= bytes.size(); ++cut) {
    size_t expect_records = 0;
    size_t expect_boundary = sizeof(kSegmentHeader);
    for (size_t i = 0; i < record_ends.size(); ++i) {
      if (record_ends[i] <= cut) {
        expect_records = i + 1;
        expect_boundary = record_ends[i];
      }
    }
    std::vector<SealedWindow> out;
    WindowLogStatus tail = WindowLogStatus::kOk;
    const size_t boundary =
        DecodeSegment(std::span<const uint8_t>(bytes.data(), cut), key, out, tail);
    EXPECT_EQ(out.size(), expect_records) << "cut=" << cut;
    EXPECT_EQ(boundary, expect_boundary) << "cut=" << cut;
    EXPECT_EQ(tail == WindowLogStatus::kOk, cut == expect_boundary) << "cut=" << cut;
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], SampleWindow(i));
    }
  }
}

// Deterministic garbage appended after valid records: the prefix always survives, the tail is
// never trusted, and nothing crashes regardless of what the bytes happen to look like.
TEST(WindowLogFormat, GarbageTailFuzz) {
  const ReportKey key;
  Rng rng(20250809);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> bytes(kSegmentHeader, kSegmentHeader + sizeof(kSegmentHeader));
    EncodeWindowRecord(SampleWindow(5), key, bytes);
    const size_t valid_end = bytes.size();
    const size_t garbage = 1 + rng.NextBounded(64);
    for (size_t i = 0; i < garbage; ++i) {
      bytes.push_back(static_cast<uint8_t>(rng.NextBounded(256)));
    }
    std::vector<SealedWindow> out;
    WindowLogStatus tail = WindowLogStatus::kOk;
    const size_t boundary = DecodeSegment(bytes, key, out, tail);
    ASSERT_GE(out.size(), 1u) << "trial=" << trial;
    EXPECT_EQ(out[0], SampleWindow(5)) << "trial=" << trial;
    EXPECT_EQ(boundary, valid_end) << "trial=" << trial;
    EXPECT_NE(tail, WindowLogStatus::kOk) << "trial=" << trial;
  }
}

// Every single-bit flip inside a record must be rejected — and classified, never half-parsed.
TEST(WindowLogFormat, EverySingleBitFlipIsRejected) {
  const ReportKey key;
  std::vector<uint8_t> clean;
  EncodeWindowRecord(SampleWindow(2), key, clean);
  for (size_t byte = 0; byte < clean.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::vector<uint8_t> bytes = clean;
      bytes[byte] ^= static_cast<uint8_t>(1u << bit);
      size_t pos = 0;
      SealedWindow out;
      const WindowLogStatus status = DecodeWindowRecord(bytes, pos, key, out);
      // A flip inside the length varint can make the frame read as truncated; anything else
      // must fail magic, version, CRC, auth, or payload checks.
      EXPECT_NE(status, WindowLogStatus::kOk) << "byte=" << byte << " bit=" << bit;
      EXPECT_EQ(pos, 0u) << "byte=" << byte << " bit=" << bit;
    }
  }
}

TEST(WindowLogFormat, VersionAndKeyMismatchAreRejected) {
  const ReportKey key;
  std::vector<uint8_t> bytes;
  EncodeWindowRecord(SampleWindow(4), key, bytes);
  // Locate the frame start: the record begins with the length varint.
  size_t cursor = 0;
  uint64_t length = 0;
  ASSERT_TRUE(GetVarint(bytes, cursor, length));

  // Future version byte, CRC re-stamped so only the version check can object.
  std::vector<uint8_t> versioned = bytes;
  versioned[cursor + 2] = 9;
  {
    const size_t frame_start = cursor;
    const size_t crc_pos = frame_start + static_cast<size_t>(length) - 4;
    const uint32_t crc =
        Crc32(std::span<const uint8_t>(versioned.data() + frame_start, crc_pos - frame_start));
    for (int i = 0; i < 4; ++i) {
      versioned[crc_pos + static_cast<size_t>(i)] = static_cast<uint8_t>(crc >> (8 * i));
    }
    size_t pos = 0;
    SealedWindow out;
    EXPECT_EQ(DecodeWindowRecord(versioned, pos, key, out), WindowLogStatus::kBadVersion);
  }

  // Wrong key: CRC is fine (it is keyless), the SipHash tag is not.
  ReportKey wrong;
  wrong.k0 ^= 1;
  size_t pos = 0;
  SealedWindow out;
  EXPECT_EQ(DecodeWindowRecord(bytes, pos, wrong, out), WindowLogStatus::kBadAuth);
}

TEST(WindowLog, ReopenAppendRoundTripAndTornTailRecovery) {
  const std::string dir = TempLogDir("reopen");
  {
    WindowLogWriter writer(dir);
    ASSERT_TRUE(writer.ok()) << writer.error();
    writer.Append(SampleWindow(0));
    writer.Append(SampleWindow(1));
  }
  // Tear the newest segment mid-record: append a valid record, then chop bytes off the end.
  {
    std::vector<uint8_t> record;
    EncodeWindowRecord(SampleWindow(2), ReportKey{}, record);
    ASSERT_GT(record.size(), 5u);
    std::vector<fs::path> segments;
    for (const auto& entry : fs::directory_iterator(dir)) {
      segments.push_back(entry.path());
    }
    ASSERT_EQ(segments.size(), 1u);
    std::ofstream out(segments[0], std::ios::binary | std::ios::app);
    out.write(reinterpret_cast<const char*>(record.data()),
              static_cast<std::streamsize>(record.size() - 5));
  }
  // Reopen: the torn tail is truncated away, appending continues cleanly after window 1.
  {
    WindowLogWriter writer(dir);
    ASSERT_TRUE(writer.ok()) << writer.error();
    EXPECT_GT(writer.recovered_tail_bytes(), 0u);
    writer.Append(SampleWindow(2));
  }
  const WindowLogReadResult read = ReadWindowLog(dir);
  ASSERT_TRUE(read.error.empty()) << read.error;
  EXPECT_TRUE(read.clean);
  ASSERT_EQ(read.windows.size(), 3u);
  for (uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(read.windows[i], SampleWindow(i));
  }
}

TEST(WindowLog, RotationAndBoundedRetention) {
  const std::string dir = TempLogDir("retention");
  WindowLogOptions options;
  options.max_records_per_segment = 2;
  options.max_segments = 2;
  WindowLogWriter writer(dir, options);
  ASSERT_TRUE(writer.ok()) << writer.error();
  for (uint64_t i = 0; i < 9; ++i) {
    ASSERT_TRUE(writer.Append(SampleWindow(i)));
  }
  EXPECT_GT(writer.segments_retired(), 0u);
  size_t segment_files = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    (void)entry;
    ++segment_files;
  }
  EXPECT_LE(segment_files, 2u);
  // The newest windows survive; ReadWindowLog returns them oldest-first.
  const WindowLogReadResult read = ReadWindowLog(dir);
  ASSERT_TRUE(read.error.empty());
  ASSERT_GE(read.windows.size(), 3u);
  EXPECT_EQ(read.windows.back(), SampleWindow(8));
  for (size_t i = 1; i < read.windows.size(); ++i) {
    EXPECT_EQ(read.windows[i].window_index, read.windows[i - 1].window_index + 1);
  }
}

TEST(WindowLog, RefusesDirectoryWithForeignFiles) {
  const std::string dir = TempLogDir("foreign");
  {
    std::ofstream out(fs::path(dir) / "wlog-0000000000000000.seg", std::ios::binary);
    out << "definitely not a window log";
  }
  WindowLogWriter writer(dir);
  EXPECT_FALSE(writer.ok());
  EXPECT_FALSE(writer.error().empty());
  // The bad file is left untouched.
  EXPECT_GT(fs::file_size(fs::path(dir) / "wlog-0000000000000000.seg"), 0u);
}

// ---- Query plane over synthetic windows --------------------------------------------------

SealedWindow SuspectWindow(uint64_t index, std::vector<LinkId> links) {
  SealedWindow w;
  w.window_index = index;
  w.num_slots = 10;
  SealedBoundary b;
  b.segment = 6;
  b.time_seconds = 30.0;
  for (const LinkId link : links) {
    b.suspects.push_back(SuspectLink{link, 0.1 + 0.01 * static_cast<double>(index),
                                     /*hit_ratio=*/1.0,
                                     /*explained_losses=*/static_cast<int64_t>(index)});
  }
  w.boundaries.push_back(b);
  return w;
}

TEST(QueryPlane, EpisodesSplitOnGapsAndAbsences) {
  std::vector<SealedWindow> windows;
  windows.push_back(SuspectWindow(0, {7}));
  windows.push_back(SuspectWindow(1, {7}));
  windows.push_back(SuspectWindow(2, {}));   // absent: episode break
  windows.push_back(SuspectWindow(3, {7}));
  windows.push_back(SuspectWindow(5, {7}));  // retention gap (window 4 evicted): break
  QueryEngine engine(std::move(windows));

  const auto timeline = engine.LinkTimeline(7);
  ASSERT_EQ(timeline.size(), 5u);
  EXPECT_TRUE(timeline[0].suspected);
  EXPECT_FALSE(timeline[2].suspected);

  const auto episodes = engine.LinkEpisodes(7);
  ASSERT_EQ(episodes.size(), 3u);
  EXPECT_EQ(episodes[0].first_window, 0u);
  EXPECT_EQ(episodes[0].last_window, 1u);
  EXPECT_EQ(episodes[0].windows, 2u);
  EXPECT_EQ(episodes[1].first_window, 3u);
  EXPECT_EQ(episodes[2].first_window, 5u);

  // "Last N windows" restricts the range.
  EXPECT_EQ(engine.LinkEpisodes(7, 2).size(), 2u);
  EXPECT_EQ(engine.LinkTimeline(7, 2).size(), 2u);

  const auto top = engine.TopLinks();
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].link, 7);
  EXPECT_EQ(top[0].windows_suspected, 4u);
}

// ---- The acceptance gate: replay-vs-live bit-identity ------------------------------------

DetectorSystemOptions HistoryTestOptions(double pps) {
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = pps;
  options.segments_per_window = 6;
  options.diagnose_every_segments = 2;
  return options;
}

std::vector<ChurnEvent> MidWindowChurn(const FatTree& ft) {
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{8.0, TopologyDelta::LinkDown(ft.AggCoreLink(1, 0, 1))});
  churn.push_back(ChurnEvent{14.0, TopologyDelta::NodeDown(ft.Server(2, 0, 1))});
  churn.push_back(ChurnEvent{23.0, TopologyDelta::LinkUp(ft.AggCoreLink(1, 0, 1))});
  return churn;
}

TEST(HistoryReplay, ReplayedSuspectSetsAreBitIdenticalAtEveryBoundary) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 1, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.08;
  scenario.failures.push_back(f);
  const std::vector<ChurnEvent> churn = MidWindowChurn(ft);

  const std::string dir = TempLogDir("replay");
  DetectorSystemOptions options = HistoryTestOptions(150);
  options.history_dir = dir;
  DetectorSystem system(routing, options);
  Rng rng(99);
  std::vector<DetectorSystem::StreamingWindowResult> live;
  live.push_back(system.RunWindowStreaming(scenario, churn, rng));
  live.push_back(system.RunWindowStreaming(scenario, {}, rng));
  live.push_back(system.RunWindowStreaming(scenario, {}, rng));
  EXPECT_EQ(system.history_windows_sealed(), 3u);
  ASSERT_NE(system.history_log(), nullptr);
  EXPECT_TRUE(system.history_log()->ok()) << system.history_log()->error();

  QueryEngine engine = QueryEngine::FromDir(dir);
  ASSERT_TRUE(engine.ok()) << engine.read_result().error;
  EXPECT_TRUE(engine.read_result().clean);
  ASSERT_EQ(engine.num_windows(), live.size());

  ReplayOptions replay_options;
  replay_options.pll = options.pll;
  const std::vector<ReplayedWindow> replayed =
      engine.Replay(ft.topology(), system.probe_matrix(), replay_options);
  ASSERT_EQ(replayed.size(), live.size());
  for (size_t w = 0; w < live.size(); ++w) {
    const auto& timeline = live[w].timeline;
    ASSERT_EQ(replayed[w].boundaries.size(), timeline.size()) << "window " << w;
    for (size_t b = 0; b < timeline.size(); ++b) {
      const std::string when =
          "window " + std::to_string(w) + " boundary " + std::to_string(b);
      ExpectIdenticalLocalizations(replayed[w].boundaries[b].localization,
                                   timeline[b].localization, when);
    }
  }

  // The log itself records the same diagnosis timeline the live run returned.
  for (size_t w = 0; w < live.size(); ++w) {
    const SealedWindow& sealed = engine.window(w);
    ASSERT_EQ(sealed.boundaries.size(), live[w].timeline.size());
    EXPECT_EQ(sealed.boundaries.back().suspects, live[w].window.localization.links);
    EXPECT_EQ(sealed.probes_sent, live[w].window.probes_sent);
  }
  EXPECT_EQ(engine.window(0).churn_events, 3u);
}

// Report-plane mode seals the same windows as direct mode — the retention seam sits behind
// the collector fold, so the on-disk history is transport-independent.
TEST(HistoryReplay, ReportPlaneLogMatchesDirectModeLog) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 1, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.08;
  scenario.failures.push_back(f);

  auto record = [&](bool report_plane) {
    const std::string dir = TempLogDir(report_plane ? "rp" : "direct");
    DetectorSystemOptions options = HistoryTestOptions(150);
    options.report_plane = report_plane;
    options.history_dir = dir;
    DetectorSystem system(routing, options);
    Rng rng(99);
    system.RunWindowStreaming(scenario, {}, rng);
    system.RunWindowStreaming(scenario, {}, rng);
    return ReadWindowLog(dir).windows;
  };
  const std::vector<SealedWindow> direct = record(false);
  const std::vector<SealedWindow> report = record(true);
  ASSERT_EQ(direct.size(), 2u);
  EXPECT_EQ(direct, report);
}

// What-if replay: loosening the hit-ratio threshold can only widen the suspect set.
TEST(HistoryReplay, AlteredThresholdReplayWidensMonotonically) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 0, 0);
  f.type = FailureType::kDeterministicPartial;
  f.match_fraction = 0.5;
  f.rule_seed = 77;
  scenario.failures.push_back(f);

  const std::string dir = TempLogDir("whatif");
  DetectorSystemOptions options = HistoryTestOptions(150);
  options.history_dir = dir;
  DetectorSystem system(routing, options);
  Rng rng(7);
  system.RunWindowStreaming(scenario, {}, rng);
  QueryEngine engine = QueryEngine::FromDir(dir);
  ASSERT_EQ(engine.num_windows(), 1u);

  ReplayOptions live_opts;
  live_opts.pll = options.pll;
  ReplayOptions loose = live_opts;
  loose.pll.hit_ratio_threshold = 0.1;
  const auto base = engine.Replay(ft.topology(), system.probe_matrix(), live_opts);
  const auto wide = engine.Replay(ft.topology(), system.probe_matrix(), loose);
  ASSERT_EQ(base.size(), 1u);
  ASSERT_EQ(wide.size(), 1u);
  const auto& base_links = base[0].boundaries.back().localization.links;
  const auto& wide_links = wide[0].boundaries.back().localization.links;
  EXPECT_GE(wide_links.size(), base_links.size());
  for (const SuspectLink& s : base_links) {
    bool found = false;
    for (const SuspectLink& t : wide_links) {
      found = found || t.link == s.link;
    }
    EXPECT_TRUE(found) << "link " << s.link << " vanished when the threshold loosened";
  }
}

}  // namespace
}  // namespace detector
