// Hostile-network hardening tests (PR 8): frame authentication, impairment-transport
// determinism and loss-free equivalence, collector liveness, and agent-side collector
// failover.
//
// Provenance of the red runs the acceptance criteria ask for: the tamper tests
// (FrameAuthTest.*) were verified FAILING against the pre-hardening codec (v1: CRC only, no
// MAC) — a bit-flipped frame with a recomputed CRC decoded kOk and would have folded. The
// liveness and failover tests exercise state that did not exist pre-hardening (no last-seen
// tracking at the collector, no multi-backend transport, UDP ECONNREFUSED swallowed as
// silent loss), so they are impossible to express against the old code paths.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/detector/system.h"
#include "src/net/failover.h"
#include "src/net/impairment.h"
#include "src/net/loopback.h"
#include "src/report/codec.h"
#include "src/report/collector.h"
#include "src/report/emitter.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

ReportFrame SampleFrame() {
  ReportFrame f;
  f.pinger = 7;
  f.window_id = 3;
  f.seq = 11;
  f.paths.push_back(WirePathDelta{12, 1, 40, 200, 3});
  f.paths.push_back(WirePathDelta{15, 1, 41, 180, 0});
  f.intra.push_back(WireIntraDelta{9, 64, 1});
  return f;
}

// Flip one bit in the frame, then recompute the trailing CRC so the frame passes the
// integrity check — the forged-frame shape. Pre-hardening this decoded kOk; the keyed tag
// (which the forger cannot recompute) must reject it.
std::vector<uint8_t> TamperWithCrcFixup(std::vector<uint8_t> bytes, size_t index,
                                        uint8_t mask) {
  bytes[index] ^= mask;
  const size_t body = bytes.size() - 4;
  const uint32_t crc = Crc32({bytes.data(), body});
  for (size_t b = 0; b < 4; ++b) {
    bytes[body + b] = static_cast<uint8_t>(crc >> (8 * b));
  }
  return bytes;
}

TEST(FrameAuthTest, CrcFixedTamperIsRejected) {
  std::vector<uint8_t> bytes;
  ReportCodec::Encode(SampleFrame(), bytes);

  // Flip a bit in every tag and payload byte (magic/version have their own checks; the CRC
  // bytes are skipped because the fixup would undo the flip there).
  const size_t body = bytes.size() - 4;
  for (size_t i = 3; i < body; ++i) {
    std::vector<uint8_t> forged = TamperWithCrcFixup(bytes, i, 0x01);
    ReportFrame out;
    EXPECT_EQ(ReportCodec::Decode(forged, out), DecodeStatus::kBadAuth)
        << "forged frame not flagged as tampered after bit flip at byte " << i;
  }
}

// The collector distinguishes the three rejection classes on its counters: tamper
// (CRC-clean, tag-failed), corruption (CRC-failed), and staleness (authentic but late).
TEST(FrameAuthTest, TamperVsCorruptVsStaleCounters) {
  ObservationStore store;
  store.EnsureSlots(32);
  Collector collector(store);
  collector.BeginWindow(2);

  ReportFrame frame = SampleFrame();
  frame.window_id = 2;
  std::vector<uint8_t> good;
  ReportCodec::Encode(frame, good);

  collector.Offer(TamperWithCrcFixup(good, ReportCodec::kHeaderPos + 2, 0x10));
  std::vector<uint8_t> corrupt = good;
  corrupt[ReportCodec::kHeaderPos + 2] ^= 0x10;  // no CRC fixup: in-flight damage
  collector.Offer(std::move(corrupt));
  ReportFrame stale = frame;
  stale.window_id = 1;
  std::vector<uint8_t> stale_wire;
  ReportCodec::Encode(stale, stale_wire);
  collector.Offer(std::move(stale_wire));
  collector.Offer(good);
  collector.Drain();

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.tampered_dropped, 1u);
  EXPECT_EQ(stats.decode_errors, 1u);
  EXPECT_EQ(stats.stale_window_dropped, 1u);
  EXPECT_EQ(stats.frames_folded, 1u) << "the untouched frame must still fold";
}

// A collector keyed differently from its emitters treats every frame as tampered — key skew
// is loud, not a silent data hole with folded garbage.
TEST(FrameAuthTest, KeySkewRejectsEveryFrame) {
  ObservationStore store;
  store.EnsureSlots(32);
  CollectorOptions options;
  options.key = ReportKey{0xA1, 0xB2};
  Collector collector(store, options);
  collector.BeginWindow(3);

  LoopbackTransport transport;
  ReportEmitter emitter(/*pinger=*/7, /*window_id=*/3, /*start_seq=*/0, {}, transport,
                        /*batch_observations=*/2);  // default (mismatched) key
  for (PathId slot = 0; slot < 6; ++slot) {
    emitter.OnPath(slot, /*target=*/slot + 50, /*sent=*/10, /*lost=*/1);
  }
  emitter.Flush();
  collector.PumpFrom(transport);

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.tampered_dropped, emitter.stats().frames_emitted);
  EXPECT_EQ(stats.frames_folded, 0u);
  EXPECT_EQ(stats.pingers_tracked, 0u) << "unauthenticated frames must not feed liveness";
}

// ---------------------------------------------------------------------------
// ImpairmentTransport
// ---------------------------------------------------------------------------

std::vector<std::vector<uint8_t>> RunThroughImpairment(const ImpairmentProfile& profile,
                                                       size_t frames,
                                                       ImpairmentStats* stats = nullptr) {
  ImpairmentTransport transport(std::make_unique<LoopbackTransport>(), profile);
  for (size_t i = 0; i < frames; ++i) {
    std::vector<uint8_t> frame(16 + i % 7);
    for (size_t b = 0; b < frame.size(); ++b) {
      frame[b] = static_cast<uint8_t>(i + b);
    }
    transport.Send(frame);
  }
  transport.Flush();
  std::vector<std::vector<uint8_t>> delivered;
  std::vector<uint8_t> out;
  while (transport.Receive(out)) {
    delivered.push_back(out);
  }
  if (stats != nullptr) {
    *stats = transport.impairment_stats();
  }
  return delivered;
}

TEST(ImpairmentTransportTest, SameSeedSameSchedule) {
  ImpairmentProfile profile;
  profile.delay_ticks = 2;
  profile.jitter_ticks = 5;
  profile.rate_limit_per_tick = 2;
  profile.burst_loss_rate = 0.05;
  profile.burst_length = 3;
  profile.dup_rate = 0.1;
  profile.corrupt_rate = 0.05;
  profile.seed = 42;

  ImpairmentStats stats;
  const auto a = RunThroughImpairment(profile, 200, &stats);
  const auto b = RunThroughImpairment(profile, 200);
  EXPECT_EQ(a, b) << "same seed and send order must deliver identically, byte for byte";
  // The profile actually did things — every impairment class fired at these rates.
  EXPECT_GT(stats.frames_dropped_burst, 0u);
  EXPECT_GT(stats.frames_duplicated, 0u);
  EXPECT_GT(stats.frames_corrupted + stats.frames_truncated, 0u);
  EXPECT_GT(stats.frames_delayed, 0u);
  EXPECT_GT(stats.frames_rate_limited, 0u);
  EXPECT_LT(a.size(), 200u + stats.frames_duplicated) << "burst loss delivered everything";

  profile.seed = 43;
  const auto c = RunThroughImpairment(profile, 200);
  EXPECT_NE(a, c) << "a different seed should produce a different schedule";
}

TEST(ImpairmentTransportTest, BurstLossEatsRuns) {
  ImpairmentProfile profile;
  profile.burst_loss_rate = 0.1;
  profile.burst_length = 4;
  profile.seed = 7;
  ImpairmentStats stats;
  const auto delivered = RunThroughImpairment(profile, 400, &stats);
  EXPECT_EQ(delivered.size() + stats.frames_dropped_burst, 400u)
      << "every sent frame is either delivered or a counted burst loss";
  // Bursts eat burst_length frames per trigger, so losses come in multiples of whole bursts
  // (the tail burst may be cut short by the end of the run).
  EXPECT_GE(stats.frames_dropped_burst, profile.burst_length);
}

TEST(ImpairmentTransportTest, LosslessProfileLosesNothing) {
  ImpairmentProfile profile;
  profile.delay_ticks = 3;
  profile.jitter_ticks = 7;
  profile.rate_limit_per_tick = 1;
  profile.dup_rate = 0.15;
  profile.seed = 11;
  ASSERT_TRUE(profile.lossless());
  ImpairmentStats stats;
  const auto delivered = RunThroughImpairment(profile, 300, &stats);
  EXPECT_EQ(delivered.size(), 300u + stats.frames_duplicated)
      << "a lossless profile must deliver every frame (plus its duplicates) after Flush";
}

// Corrupted frames reach the collector but never the store: every damaged frame is rejected
// by the codec (bit flips fail the CRC, truncations fail structurally) and counted.
TEST(ImpairmentTransportTest, CorruptedFramesNeverFold) {
  ImpairmentProfile profile;
  profile.corrupt_rate = 1.0;
  profile.truncate_fraction = 0.5;
  profile.seed = 13;
  ImpairmentTransport transport(std::make_unique<LoopbackTransport>(), profile);

  ObservationStore store;
  store.EnsureSlots(64);
  Collector collector(store);
  collector.BeginWindow(1);
  ReportEmitter emitter(/*pinger=*/3, /*window_id=*/1, /*start_seq=*/0, {}, transport,
                        /*batch_observations=*/4);
  for (PathId slot = 0; slot < 40; ++slot) {
    emitter.OnPath(slot, /*target=*/slot + 10, /*sent=*/5, /*lost=*/0);
  }
  emitter.Flush();
  transport.Flush();
  collector.PumpFrom(transport);

  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.frames_folded, 0u) << "a 100%-corruption channel folded a frame";
  EXPECT_EQ(stats.decode_errors, emitter.stats().frames_emitted);
  EXPECT_EQ(stats.tampered_dropped, 0u)
      << "random damage must read as corruption, not tamper";
}

// The satellite equivalence gate: any impairment profile with loss and corruption disabled
// (delay/jitter/rate-limit/dup over a reordering inner loopback) leaves window-end store
// state bit-identical to direct mode at 1, 2 and 8 probe threads — delivery is reshuffled
// and duplicated, but the idempotent (pinger, window, seq) fold erases all of it.
TEST(HostileNet, LosslessImpairmentBitIdenticalToDirectAt1_2_8Threads) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 1, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.08;
  scenario.failures.push_back(f);
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{8.0, TopologyDelta::LinkDown(ft.AggCoreLink(1, 0, 1))});
  churn.push_back(ChurnEvent{14.0, TopologyDelta::NodeDown(ft.Server(2, 0, 1))});
  churn.push_back(ChurnEvent{23.0, TopologyDelta::LinkUp(ft.AggCoreLink(1, 0, 1))});

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    auto run = [&](bool impaired) {
      DetectorSystemOptions options;
      options.pmc.alpha = 1;
      options.pmc.beta = 1;
      options.controller.packets_per_second = 150;
      options.segments_per_window = 6;
      options.diagnose_every_segments = 2;
      options.probe_threads = threads;
      options.report_plane = impaired;
      DetectorSystem system(routing, options);
      if (impaired) {
        system.SetReportTransportFactory([](size_t i) -> std::unique_ptr<Transport> {
          LoopbackOptions inner;
          inner.reorder_rate = 0.3;
          inner.seed = 17 + i;
          ImpairmentProfile profile;
          profile.delay_ticks = 2;
          profile.jitter_ticks = 4;
          profile.rate_limit_per_tick = 8;
          profile.dup_rate = 0.1;
          profile.seed = 91 + i;
          return std::make_unique<ImpairmentTransport>(
              std::make_unique<LoopbackTransport>(inner), profile);
        });
      }
      Rng rng(99);
      std::vector<DetectorSystem::StreamingWindowResult> out;
      out.push_back(system.RunWindowStreaming(scenario, churn, rng));
      out.push_back(system.RunWindowStreaming(scenario, {}, rng));
      if (impaired) {
        EXPECT_NE(system.collector(), nullptr);
        if (system.collector() != nullptr) {
          const CollectorStats stats = system.collector()->stats();
          EXPECT_GT(stats.frames_folded, 0u);
          EXPECT_GT(stats.duplicates_dropped, 0u) << "dup injection never fired";
          EXPECT_EQ(stats.decode_errors, 0u);
          EXPECT_EQ(stats.tampered_dropped, 0u);
        }
      }
      return out;
    };
    const auto direct = run(false);
    const auto impaired = run(true);
    ASSERT_EQ(direct.size(), impaired.size());
    for (size_t w = 0; w < direct.size(); ++w) {
      const std::string when =
          "threads=" + std::to_string(threads) + " window=" + std::to_string(w);
      ExpectIdenticalWindows(direct[w].window, impaired[w].window, when);
      ASSERT_EQ(direct[w].timeline.size(), impaired[w].timeline.size()) << when;
      for (size_t i = 0; i < direct[w].timeline.size(); ++i) {
        ExpectIdenticalLocalizations(direct[w].timeline[i].localization,
                                     impaired[w].timeline[i].localization,
                                     when + " boundary " + std::to_string(i));
        EXPECT_EQ(direct[w].timeline[i].server_link_alarms,
                  impaired[w].timeline[i].server_link_alarms)
            << when << " boundary " << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------------

std::vector<uint8_t> LivenessFrame(NodeId pinger, uint64_t window, uint64_t seq) {
  ReportFrame frame;
  frame.pinger = pinger;
  frame.window_id = window;
  frame.seq = seq;
  frame.paths.push_back(WirePathDelta{0, 0, 10, 5, 0});
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);
  return wire;
}

// The liveness soak: an agent that goes silent mid-run is flagged stale within the
// configured horizon — not one tick earlier (a quiet-but-in-horizon pinger is fine), and it
// recovers the moment it speaks again.
TEST(Liveness, SilentAgentFlagsStaleWithinHorizon) {
  ObservationStore store;
  store.EnsureSlots(32);
  CollectorOptions options;
  options.liveness_horizon = 3;
  Collector collector(store, options);
  collector.BeginWindow(1);

  // Both agents report in window 1.
  collector.Offer(LivenessFrame(5, 1, 0));
  collector.Offer(LivenessFrame(6, 1, 0));
  collector.Drain();
  EXPECT_EQ(collector.stats().pingers_tracked, 2u);
  EXPECT_TRUE(collector.StalePingers().empty());

  // Agent 6 dies. Agent 5 keeps reporting every boundary; each tick within the horizon must
  // NOT flag agent 6 yet.
  uint64_t seq = 1;
  for (uint64_t tick = 0; tick < options.liveness_horizon; ++tick) {
    collector.AdvanceBoundary();
    collector.Offer(LivenessFrame(5, 1, seq++));
    collector.Drain();
    EXPECT_TRUE(collector.StalePingers().empty())
        << "flagged " << tick + 1 << " ticks into a horizon of " << options.liveness_horizon;
  }
  // One tick past the horizon: agent 6 is the alarm, agent 5 is not.
  collector.AdvanceBoundary();
  collector.Offer(LivenessFrame(5, 1, seq++));
  collector.Drain();
  EXPECT_EQ(collector.StalePingers(), std::vector<NodeId>{6});
  EXPECT_EQ(collector.stats().stale_pingers, 1u);
  EXPECT_EQ(collector.stats().pingers_tracked, 2u) << "stale is tracked, not forgotten";

  // The agent comes back — even a duplicate of an old frame proves liveness.
  collector.Offer(LivenessFrame(6, 1, 0));
  collector.Drain();
  EXPECT_TRUE(collector.StalePingers().empty());
  EXPECT_EQ(collector.stats().duplicates_dropped, 1u);
}

// Liveness state survives window flips — silence is exactly what it must remember across
// windows, and the clock ticks at BeginWindow too.
TEST(Liveness, TrackingSurvivesWindowFlips) {
  ObservationStore store;
  store.EnsureSlots(32);
  CollectorOptions options;
  options.liveness_horizon = 2;
  Collector collector(store, options);
  collector.BeginWindow(1);
  collector.Offer(LivenessFrame(5, 1, 0));
  collector.Offer(LivenessFrame(6, 1, 0));
  collector.Drain();

  for (uint64_t w = 2; w <= 4; ++w) {
    collector.BeginWindow(w);
    collector.Offer(LivenessFrame(5, w, 0));
    collector.Drain();
  }
  EXPECT_EQ(collector.StalePingers(), std::vector<NodeId>{6})
      << "window flips cleared liveness state";
  EXPECT_EQ(collector.stats().pingers_tracked, 2u);
}

// ---------------------------------------------------------------------------
// Failover
// ---------------------------------------------------------------------------

// A loopback whose send side can be killed mid-run — the unit-test stand-in for a collector
// process dying under a connected UDP socket (ECONNREFUSED makes Send return false there).
class KillableTransport final : public Transport {
 public:
  bool Send(std::span<const uint8_t> frame) override {
    if (dead_.load(std::memory_order_acquire)) {
      return false;
    }
    return inner_.Send(frame);
  }
  bool Receive(std::vector<uint8_t>& out) override { return inner_.Receive(out); }
  void Flush() override { inner_.Flush(); }
  TransportStats stats() const override { return inner_.stats(); }
  void Kill() { dead_.store(true, std::memory_order_release); }

 private:
  std::atomic<bool> dead_{false};
  LoopbackTransport inner_;
};

// The failover soak: the primary collector dies mid-run; the agent cycles to the backup
// after the configured number of consecutive failures and accounting stays exact across the
// handover — every emitted frame is folded, a counted duplicate, or a counted send failure.
TEST(Failover, AccountingExactAcrossHandover) {
  auto primary_owned = std::make_unique<KillableTransport>();
  KillableTransport* primary = primary_owned.get();
  std::vector<std::unique_ptr<Transport>> backends;
  backends.push_back(std::move(primary_owned));
  backends.push_back(std::make_unique<LoopbackTransport>());
  FailoverOptions options;
  options.failover_after = 3;
  FailoverTransport transport(std::move(backends), options);

  ObservationStore store;
  store.EnsureSlots(256);
  Collector collector(store);
  collector.BeginWindow(1);
  ReportEmitter emitter(/*pinger=*/4, /*window_id=*/1, /*start_seq=*/0, {}, transport,
                        /*batch_observations=*/1);  // one frame per observation
  for (PathId slot = 0; slot < 100; ++slot) {
    if (slot == 40) {
      primary->Kill();  // the collector process dies mid-window
    }
    emitter.OnPath(slot, /*target=*/slot, /*sent=*/3, /*lost=*/0);
  }
  emitter.Flush();

  EXPECT_EQ(transport.failovers(), 1u);
  EXPECT_EQ(transport.active_index(), 1u);
  // Sends 41 and 42 failed under threshold (counted); send 43 tripped the failover and was
  // re-sent on the backup. Everything else landed first try.
  EXPECT_EQ(emitter.stats().frames_send_failed, options.failover_after - 1);

  collector.PumpFrom(transport);
  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.frames_folded + emitter.stats().frames_send_failed,
            emitter.stats().frames_emitted)
      << "handover accounting leaked frames";
  EXPECT_EQ(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
}

// With failover_after=1 (fail fast) the handover is lossless: the tripping frame re-sends on
// the backup, so every emitted frame folds exactly once even though frames 0..39 sit on the
// dead primary's receive queue and the rest on the backup's.
TEST(Failover, FailFastHandoverIsLossless) {
  auto primary_owned = std::make_unique<KillableTransport>();
  KillableTransport* primary = primary_owned.get();
  std::vector<std::unique_ptr<Transport>> backends;
  backends.push_back(std::move(primary_owned));
  backends.push_back(std::make_unique<LoopbackTransport>());
  FailoverTransport transport(std::move(backends), FailoverOptions{.failover_after = 1});

  ObservationStore store;
  store.EnsureSlots(256);
  Collector collector(store);
  collector.BeginWindow(1);
  ReportEmitter emitter(/*pinger=*/4, /*window_id=*/1, /*start_seq=*/0, {}, transport,
                        /*batch_observations=*/1);
  for (PathId slot = 0; slot < 100; ++slot) {
    if (slot == 40) {
      primary->Kill();
    }
    emitter.OnPath(slot, /*target=*/slot, /*sent=*/3, /*lost=*/0);
  }
  emitter.Flush();
  EXPECT_EQ(emitter.stats().frames_send_failed, 0u);
  EXPECT_EQ(transport.failovers(), 1u);

  collector.PumpFrom(transport);
  const CollectorStats stats = collector.stats();
  EXPECT_EQ(stats.frames_folded, emitter.stats().frames_emitted);
  EXPECT_EQ(stats.duplicates_dropped, 0u);
}

// End-to-end: a system whose primary report backend is dead from the first frame runs the
// whole window over the backup and stays bit-identical to direct mode — failover is
// invisible to diagnosis.
TEST(Failover, SystemWindowBitIdenticalOverBackup) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  uint64_t failovers = 0;
  size_t active_index = 0;
  auto run = [&](bool report) {
    FailoverTransport* failover = nullptr;
    DetectorSystemOptions options;
    options.pmc.alpha = 1;
    options.pmc.beta = 1;
    options.controller.packets_per_second = 120;
    options.segments_per_window = 6;
    options.diagnose_every_segments = 2;
    options.probe_threads = 1;
    options.report_plane = report;
    DetectorSystem system(routing, options);
    if (report) {
      system.SetReportTransportFactory([&](size_t) -> std::unique_ptr<Transport> {
        auto dead_primary = std::make_unique<KillableTransport>();
        dead_primary->Kill();
        std::vector<std::unique_ptr<Transport>> backends;
        backends.push_back(std::move(dead_primary));
        backends.push_back(std::make_unique<LoopbackTransport>());
        auto t = std::make_unique<FailoverTransport>(std::move(backends),
                                                     FailoverOptions{.failover_after = 1});
        failover = t.get();
        return t;
      });
    }
    Rng rng(5);
    auto result = system.RunWindowStreaming(scenario, {}, rng);
    if (failover != nullptr) {  // read before the system (which owns the transport) dies
      failovers = failover->failovers();
      active_index = failover->active_index();
    }
    return result;
  };

  const auto direct = run(false);
  const auto report = run(true);
  EXPECT_EQ(failovers, 1u);
  EXPECT_EQ(active_index, 1u);
  ExpectIdenticalWindows(direct.window, report.window, "failover window");
}

}  // namespace
}  // namespace detector
