// Baseline-system tests: Pingmesh/NetNORAD probe selection, detection of clean failures, the
// low-rate-loss blind spot (§2), playback localization, and transient-failure misses.
#include <gtest/gtest.h>

#include "src/baselines/monitoring_system.h"
#include "src/baselines/netnorad.h"
#include "src/baselines/pingmesh.h"
#include "src/baselines/playback_localizer.h"
#include "src/localize/metrics.h"
#include "src/pmc/pmc.h"
#include "src/routing/fattree_routing.h"

namespace detector {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  BaselineTest() : ft_(4), routing_(ft_) {}

  FailureScenario FullLossOn(LinkId link) const {
    FailureScenario scenario;
    LinkFailure f;
    f.link = link;
    f.type = FailureType::kFullLoss;
    scenario.failures.push_back(f);
    return scenario;
  }

  FatTree ft_;
  FatTreeRouting routing_;
  ProbeConfig probe_;
};

TEST_F(BaselineTest, PingmeshPairUniverse) {
  PingmeshSystem pingmesh(ft_, routing_, probe_, PingmeshOptions{});
  // 8 ToRs -> 8*7 ordered inter-ToR pairs plus 8 racks x 2 intra pairs.
  EXPECT_EQ(pingmesh.probe_pairs().size(), 8u * 7u + 16u);
}

TEST_F(BaselineTest, NetnoradPairsComeFromPingerPods) {
  NetnoradOptions options;
  options.pinger_pods = 2;
  options.pingers_per_pod = 2;
  NetnoradSystem netnorad(ft_, probe_, options);
  EXPECT_FALSE(netnorad.probe_pairs().empty());
  for (const auto& [src, dst] : netnorad.probe_pairs()) {
    EXPECT_LT(ft_.topology().node(src).pod, 2);  // pinger pods only
  }
}

TEST_F(BaselineTest, PingmeshLocalizesFullLoss) {
  PingmeshSystem pingmesh(ft_, routing_, probe_, PingmeshOptions{});
  const LinkId bad = ft_.AggCoreLink(0, 0, 0);
  Rng rng(21);
  const auto result = pingmesh.Run(FullLossOn(bad), /*detection_budget=*/20000, rng);
  EXPECT_GT(result.alarmed_pairs, 0);
  const auto counts = EvaluateLocalization(result.suspects, std::vector<LinkId>{bad});
  EXPECT_EQ(counts.true_positives, 1);
  EXPECT_DOUBLE_EQ(result.latency_seconds, 60.0);  // detection + playback windows
}

TEST_F(BaselineTest, NetnoradLocalizesFullLoss) {
  NetnoradOptions options;
  options.pinger_pods = 4;  // all pods so the bad link is reachable from a pinger
  NetnoradSystem netnorad(ft_, probe_, options);
  const LinkId bad = ft_.AggCoreLink(0, 0, 0);
  Rng rng(22);
  const auto result = netnorad.Run(FullLossOn(bad), 20000, rng);
  EXPECT_GT(result.alarmed_pairs, 0);
  const auto counts = EvaluateLocalization(result.suspects, std::vector<LinkId>{bad});
  EXPECT_EQ(counts.true_positives, 1);
  EXPECT_DOUBLE_EQ(result.latency_seconds, 60.0);
}

TEST_F(BaselineTest, TransientFailureEscapesPlayback) {
  PingmeshSystem pingmesh(ft_, routing_, probe_, PingmeshOptions{});
  FailureScenario scenario = FullLossOn(ft_.AggCoreLink(1, 1, 1));
  scenario.transient = true;
  Rng rng(23);
  const auto result = pingmesh.Run(scenario, 20000, rng);
  // Detection fires, but the failure is gone when Netbouncer replays: nothing localized.
  EXPECT_GT(result.alarmed_pairs, 0);
  EXPECT_TRUE(result.suspects.empty());
}

TEST_F(BaselineTest, DetectorCatchesTransientFailure) {
  PmcOptions pmc;
  pmc.alpha = 3;
  pmc.beta = 1;
  ProbeMatrix matrix = BuildProbeMatrix(routing_, PathEnumMode::kFull, pmc).matrix;
  DetectorMonitoring det(ft_.topology(), std::move(matrix), ControllerOptions{}, PllOptions{},
                         probe_);
  FailureScenario scenario = FullLossOn(ft_.AggCoreLink(1, 1, 1));
  scenario.transient = true;  // irrelevant for deTector: no second probing round needed
  Rng rng(24);
  const auto result = det.Run(scenario, 20000, rng);
  const auto counts =
      EvaluateLocalization(result.suspects, std::vector<LinkId>{ft_.AggCoreLink(1, 1, 1)});
  EXPECT_EQ(counts.true_positives, 1);
  EXPECT_DOUBLE_EQ(result.latency_seconds, 30.0);  // one window, 30 s ahead of the baselines
}

TEST_F(BaselineTest, DetectorConcentratesProbesWherePingmeshDilutes) {
  // §2's motivating blind spot, asserted via its mechanism: at the same total budget, the
  // number of probes that actually cross a given link is several times higher under deTector's
  // source-routed alpha=3 matrix than under Pingmesh's ECMP spray — which is why low-rate
  // losses on that link clear deTector's per-path loss threshold but drown in Pingmesh's
  // per-pair aggregation.
  const LinkId target = ft_.AggCoreLink(2, 0, 1);
  const int64_t budget = 6000;

  PmcOptions pmc;
  pmc.alpha = 3;
  pmc.beta = 1;
  ProbeMatrix matrix = BuildProbeMatrix(routing_, PathEnumMode::kFull, pmc).matrix;
  Watchdog wd(ft_.topology());
  Controller controller(ft_.topology(), ControllerOptions{});
  const auto pinglists = controller.BuildPinglists(matrix, wd);
  size_t total_entries = 0;
  for (const auto& list : pinglists) {
    total_entries += list.entries.size();
  }
  // deTector: budget spread evenly over pinglist entries; count packets crossing the link and
  // the max over its covering paths (what one 30 s observation of that path sees).
  const double det_per_entry = static_cast<double>(budget) / static_cast<double>(total_entries);
  double det_crossing = 0;
  std::map<PathId, double> det_per_path;
  for (const auto& list : pinglists) {
    for (const auto& entry : list.entries) {
      if (std::find(entry.route.begin(), entry.route.end(), target) != entry.route.end()) {
        det_crossing += det_per_entry;
        det_per_path[entry.path_id] += det_per_entry;
      }
    }
  }
  // Pingmesh: budget spread over pairs and ports; a flow crosses the link only if its ECMP
  // hash says so, and the pair aggregates all its flows, lossy or not.
  PingmeshSystem pingmesh(ft_, routing_, probe_, PingmeshOptions{});
  const double pm_per_pair =
      static_cast<double>(budget) / static_cast<double>(pingmesh.probe_pairs().size());
  double pm_crossing = 0;
  double pm_max_pair_fraction = 0;  // best case: fraction of one pair's probes on the link
  for (const auto& [src, dst] : pingmesh.probe_pairs()) {
    double pair_crossing = 0;
    for (int port = 0; port < 8; ++port) {
      FlowKey flow{src, dst, static_cast<uint16_t>(probe_.src_port_base + port),
                   probe_.dst_port, 17};
      const auto path = FatTreeEcmpPath(ft_, flow);
      if (std::find(path.begin(), path.end(), target) != path.end()) {
        pair_crossing += pm_per_pair / 8.0;
      }
    }
    pm_crossing += pair_crossing;
    pm_max_pair_fraction = std::max(pm_max_pair_fraction, pair_crossing / pm_per_pair);
  }

  // Concentration per observation unit: deTector's unit is a path (all its probes cross the
  // link); Pingmesh's unit is a pair (only the matching flows do).
  double det_max_path = 0;
  for (const auto& [path, packets] : det_per_path) {
    det_max_path = std::max(det_max_path, packets);
  }
  EXPECT_GE(det_max_path, 2.0 * pm_per_pair * pm_max_pair_fraction)
      << "deTector should concentrate at least 2x more probes on the link per observation";
  // And the per-observation loss signal is undiluted: every packet of a deTector path crosses
  // the link vs a fraction for the best Pingmesh pair.
  EXPECT_LT(pm_max_pair_fraction, 0.75);
}

TEST_F(BaselineTest, FbtracertFindsLossyHop) {
  const LinkId bad = ft_.AggCoreLink(0, 0, 0);
  FailureScenario scenario = FullLossOn(bad);
  ProbeEngine engine(ft_.topology(), scenario, probe_);
  Rng rng(26);
  // A pair whose ECMP paths can cross the bad link: pod 0 to pod 1.
  const std::vector<ServerPair> pairs{{ft_.Server(0, 0, 0), ft_.Server(1, 0, 0)}};
  PlaybackOptions options;
  options.ports_per_pair = 32;
  const auto playback = FbtracertLocalize(engine, ft_, pairs, options, rng);
  bool found = false;
  for (const auto& s : playback.suspects) {
    found = found || s.link == bad;
  }
  EXPECT_TRUE(found);
  EXPECT_GT(playback.probe_round_trips, 0);
}

TEST_F(BaselineTest, NetbouncerExplainsAlarmedPair) {
  const LinkId bad = ft_.AggCoreLink(0, 1, 0);
  FailureScenario scenario = FullLossOn(bad);
  ProbeEngine engine(ft_.topology(), scenario, probe_);
  Rng rng(27);
  const std::vector<ServerPair> pairs{{ft_.Server(0, 0, 0), ft_.Server(2, 1, 1)}};
  const auto playback = NetbouncerLocalize(engine, routing_, pairs, PlaybackOptions{}, rng);
  ASSERT_GE(playback.suspects.size(), 1u);
  EXPECT_EQ(playback.suspects[0].link, bad);
}

TEST_F(BaselineTest, DetectorBudgetScalesProbeVolume) {
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  ProbeMatrix matrix = BuildProbeMatrix(routing_, PathEnumMode::kFull, pmc).matrix;
  DetectorMonitoring det(ft_.topology(), std::move(matrix), ControllerOptions{}, PllOptions{},
                         probe_);
  Rng rng(28);
  FailureScenario empty;
  const auto small = det.Run(empty, 2000, rng);
  const auto large = det.Run(empty, 20000, rng);
  EXPECT_GT(large.probe_round_trips, small.probe_round_trips * 5);
}

}  // namespace
}  // namespace detector
