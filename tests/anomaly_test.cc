// Anomaly-plane tests (PR 10): the RTT sketch's integer bin mapping and merge algebra
// (associative, commutative, signed retraction — the properties the shard/thread and
// report-plane bit-identity gates rest on), quantile containment against a sorted oracle,
// the codec's RTT extension records (round trip, every truncation and single-byte corruption
// rejected with the output untouched, and the old-decoder/new-emitter skip-and-count path),
// EwmaBaseline band semantics, AnomalyEngine fusion (sustained latency excursions localize
// through PLL; negative deltas re-base instead of alarming), the store's running RTT sketches
// against their snapshot reference under watchdog flips and slot invalidation, sealed-window
// anomaly persistence and the forensic anomaly queries, and full-window bit-identity across
// probe threads and direct-vs-report planes with the anomaly plane on.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/anomaly/anomaly_engine.h"
#include "src/anomaly/ewma_baseline.h"
#include "src/anomaly/rtt_sketch.h"
#include "src/common/rng.h"
#include "src/detector/observation_store.h"
#include "src/detector/system.h"
#include "src/history/query.h"
#include "src/history/window_log.h"
#include "src/history/window_sink.h"
#include "src/pmc/probe_matrix.h"
#include "src/report/codec.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/anomaly_scenarios.h"
#include "src/sim/watchdog.h"
#include "src/topo/fattree.h"
#include "src/topo/topology.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

// ---- RttSketch: bin mapping ---------------------------------------------------------------

TEST(RttSketch, EveryValueLandsInItsBin) {
  const int bins = RttSketch::kDefaultBins;
  std::vector<int64_t> values = {0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1000, 4096, 65537};
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    values.push_back(static_cast<int64_t>(rng.NextBounded(1u << 22)));
  }
  for (const int64_t v : values) {
    const int bin = RttSketch::BinOf(v, bins);
    ASSERT_GE(bin, 0);
    ASSERT_LT(bin, bins);
    if (bin < bins - 1) {
      EXPECT_GE(v, RttSketch::BinLowerUs(bin)) << "value " << v;
      EXPECT_LT(v, RttSketch::BinUpperUs(bin, bins)) << "value " << v;
    } else {
      EXPECT_GE(v, RttSketch::BinLowerUs(bin)) << "value " << v;
    }
    // A bin's lower bound maps back to the same bin.
    EXPECT_EQ(RttSketch::BinOf(RttSketch::BinLowerUs(bin), bins), bin);
  }
  // 4 sub-bins per octave: relative bin width is at most 25% past the unary prefix.
  for (int bin = RttSketch::kSubBins; bin < bins - 1; ++bin) {
    const int64_t lower = RttSketch::BinLowerUs(bin);
    const int64_t width = RttSketch::BinUpperUs(bin, bins) - lower;
    EXPECT_LE(width * RttSketch::kSubBins, lower) << "bin " << bin;
  }
}

TEST(RttSketch, ClampsAtBothEnds) {
  const int bins = RttSketch::kDefaultBins;
  EXPECT_EQ(RttSketch::BinOf(-5, bins), 0);
  EXPECT_EQ(RttSketch::BinOf(INT64_MAX, bins), bins - 1);
  EXPECT_EQ(RttSketch::BinUpperUs(bins - 1, bins), INT64_MAX);

  RttSketch sketch(bins);
  sketch.Record(-1);
  sketch.Record(INT64_MAX);
  sketch.Record(INT64_MAX / 2);
  EXPECT_EQ(sketch.counts()[0], 1);
  EXPECT_EQ(sketch.counts()[static_cast<size_t>(bins - 1)], 2);
  EXPECT_EQ(sketch.total(), 3);
  EXPECT_EQ(sketch.Quantile(1.0), RttSketch::BinLowerUs(bins - 1));
}

// ---- RttSketch: merge algebra -------------------------------------------------------------

RttSketch RandomSketch(Rng& rng, int samples) {
  RttSketch sketch(RttSketch::kDefaultBins);
  for (int i = 0; i < samples; ++i) {
    sketch.Record(static_cast<int64_t>(rng.NextBounded(1u << 20)));
  }
  return sketch;
}

TEST(RttSketch, MergeIsAssociativeCommutativeAndSigned) {
  Rng rng(7);
  const RttSketch a = RandomSketch(rng, 100);
  const RttSketch b = RandomSketch(rng, 37);
  const RttSketch c = RandomSketch(rng, 255);

  RttSketch ab_c = a;
  ab_c.Merge(b);
  ab_c.Merge(c);
  RttSketch a_bc = b;
  a_bc.Merge(c);
  a_bc.Merge(a);
  EXPECT_EQ(ab_c, a_bc);  // (a+b)+c == a+(b+c), and any fold order

  RttSketch ba = b;
  ba.Merge(a);
  RttSketch ab = a;
  ab.Merge(b);
  EXPECT_EQ(ab, ba);

  // Retraction inverts exactly: (a+b)-b == a, bit for bit.
  RttSketch retracted = ab;
  retracted.Merge(b, /*sign=*/-1);
  EXPECT_EQ(retracted, a);
}

TEST(RttSketch, EmptyIsDistinctFromAllocatedZero) {
  const RttSketch empty;
  const RttSketch zero(RttSketch::kDefaultBins);
  EXPECT_TRUE(empty.empty());
  EXPECT_FALSE(zero.empty());
  EXPECT_FALSE(empty == zero);
  EXPECT_EQ(empty.Quantile(0.5), 0);

  // Merging an empty sketch is a no-op; merging into one adopts the bin count.
  RttSketch target = zero;
  target.Merge(empty);
  EXPECT_EQ(target, zero);
  RttSketch adopt;
  RttSketch samples(16);
  samples.Record(100);
  adopt.Merge(samples);
  EXPECT_EQ(adopt, samples);
  EXPECT_EQ(adopt.num_bins(), 16);
}

TEST(RttSketch, QuantileBracketsTheSortedOracle) {
  Rng rng(42);
  RttSketch sketch(RttSketch::kDefaultBins);
  std::vector<int64_t> samples;
  for (int i = 0; i < 1000; ++i) {
    // Bimodal: a tight mode near 100us plus a heavy tail, like a congested queue.
    const int64_t v = (i % 10 == 0)
                          ? static_cast<int64_t>(1000 + rng.NextBounded(100000))
                          : static_cast<int64_t>(80 + rng.NextBounded(60));
    samples.push_back(v);
    sketch.Record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.1, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    const size_t rank = static_cast<size_t>(
        std::max<int64_t>(1, static_cast<int64_t>(q * static_cast<double>(samples.size()))));
    const int64_t oracle = samples[rank - 1];
    const int bin = RttSketch::BinOf(oracle, sketch.num_bins());
    // The sketch returns the lower bound of the oracle's bin: the true quantile lies in
    // [Quantile(q), BinUpperUs(bin)) — within one sub-bin (<= 25% relative error).
    EXPECT_EQ(sketch.Quantile(q), RttSketch::BinLowerUs(bin)) << "q=" << q;
    EXPECT_LE(sketch.Quantile(q), oracle) << "q=" << q;
    EXPECT_LT(oracle, RttSketch::BinUpperUs(bin, sketch.num_bins())) << "q=" << q;
  }
}

// ---- Codec: RTT extension records ---------------------------------------------------------

ReportFrame RttFrame() {
  ReportFrame frame;
  frame.pinger = 42;
  frame.window_id = 7;
  frame.seq = 3;
  frame.paths.push_back(WirePathDelta{5, 0, 101, 120, 4});
  frame.paths.push_back(WirePathDelta{700, 2, 99, 64, 0});
  frame.intra.push_back(WireIntraDelta{43, 30, 2});

  RttSketch dense(RttSketch::kDefaultBins);
  for (int i = 0; i < 50; ++i) {
    dense.Record(90 + 7 * i);
  }
  frame.rtt.push_back(WireRttDelta{5, 0, 101, dense});

  RttSketch sparse(16);  // non-default bin count, gap-coded non-zero runs at both ends
  sparse.AddCount(0, 3);
  sparse.AddCount(15, 2);
  frame.rtt.push_back(WireRttDelta{700, 2, 99, sparse});
  return frame;
}

TEST(AnomalyCodec, RttFrameRoundTrip) {
  const ReportFrame frame = RttFrame();
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);
  ReportFrame decoded;
  ASSERT_EQ(ReportCodec::Decode(wire, decoded), DecodeStatus::kOk);
  EXPECT_EQ(decoded, frame);
  EXPECT_EQ(decoded.unknown_records, 0u);
}

TEST(AnomalyCodec, LossOnlyFramesCarryNoExtSection) {
  // A frame without RTT records must stay byte-identical to the pre-extension layout: an
  // "old" decoder (max_known_ext_type = 0) accepts it without any unknown-record tally.
  ReportFrame frame = RttFrame();
  frame.rtt.clear();
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);
  ReportFrame decoded;
  ASSERT_EQ(ReportCodec::Decode(wire, decoded, ReportKey{}, /*max_known_ext_type=*/0),
            DecodeStatus::kOk);
  EXPECT_EQ(decoded, frame);
  EXPECT_EQ(decoded.unknown_records, 0u);
}

TEST(AnomalyCodec, EveryTruncationOfAnRttFrameIsAnError) {
  std::vector<uint8_t> wire;
  ReportCodec::Encode(RttFrame(), wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    ReportFrame decoded;
    decoded.pinger = -7;  // sentinel: decode must not touch the output on error
    const DecodeStatus status =
        ReportCodec::Decode(std::span<const uint8_t>(wire.data(), len), decoded);
    EXPECT_NE(status, DecodeStatus::kOk) << "prefix of length " << len << " decoded";
    EXPECT_EQ(decoded.pinger, -7) << "output mutated on error at length " << len;
    EXPECT_TRUE(decoded.rtt.empty()) << "sketches leaked on error at length " << len;
  }
}

TEST(AnomalyCodec, EverySingleByteCorruptionOfAnRttFrameIsAnError) {
  std::vector<uint8_t> wire;
  ReportCodec::Encode(RttFrame(), wire);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (const uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      std::vector<uint8_t> corrupted = wire;
      corrupted[i] ^= flip;
      ReportFrame decoded;
      EXPECT_NE(ReportCodec::Decode(corrupted, decoded), DecodeStatus::kOk)
          << "corruption at byte " << i << " xor " << int{flip} << " decoded";
    }
  }
}

TEST(AnomalyCodec, OldDecoderSkipsAndCountsUnknownRecords) {
  // Mixed-version rollout: a new emitter's frame reaches a collector that predates the RTT
  // extension. The loss records must fold; the extension records are skipped over their
  // declared length and counted, never rejected.
  const ReportFrame frame = RttFrame();
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);
  ReportFrame decoded;
  ASSERT_EQ(ReportCodec::Decode(wire, decoded, ReportKey{}, /*max_known_ext_type=*/0),
            DecodeStatus::kOk);
  EXPECT_EQ(decoded.paths, frame.paths);
  EXPECT_EQ(decoded.intra, frame.intra);
  EXPECT_TRUE(decoded.rtt.empty());
  EXPECT_EQ(decoded.unknown_records, frame.rtt.size());
}

// ---- EwmaBaseline -------------------------------------------------------------------------

TEST(EwmaBaseline, NoExcursionsBeforeWarmup) {
  EwmaBaseline b(/*alpha=*/0.2, /*deviations=*/4.0, /*min_inflation=*/1.25, /*warmup=*/3);
  EXPECT_FALSE(b.Excursion(1e9));
  b.Observe(100.0);
  EXPECT_FALSE(b.Excursion(1e9));
  b.Observe(100.0);
  EXPECT_FALSE(b.Excursion(1e9));
  b.Observe(100.0);
  EXPECT_TRUE(b.warmed_up());
  EXPECT_TRUE(b.Excursion(1e9));
}

TEST(EwmaBaseline, MultiplicativeBandGuardsQuietBaselines) {
  // A perfectly quiet signal collapses the additive band to zero width; the multiplicative
  // band must still demand a real inflation.
  EwmaBaseline b(0.2, 4.0, 1.25, 3);
  for (int i = 0; i < 5; ++i) {
    b.Observe(100.0);
  }
  EXPECT_DOUBLE_EQ(b.mean(), 100.0);
  EXPECT_DOUBLE_EQ(b.deviation(), 0.0);
  EXPECT_FALSE(b.Excursion(101.0));  // above mean + 4 dev, below mean x 1.25
  EXPECT_FALSE(b.Excursion(124.0));
  EXPECT_TRUE(b.Excursion(126.0));
}

TEST(EwmaBaseline, FloorSuppressesTinyValues) {
  // A zero-mean baseline (a loss-free link) passes both bands for any positive value; the
  // floor keeps deltas too small to act on from alarming.
  EwmaBaseline b(0.2, 4.0, 1.25, 3);
  for (int i = 0; i < 4; ++i) {
    b.Observe(0.0);
  }
  EXPECT_FALSE(b.Excursion(0.001, /*floor=*/0.002));
  EXPECT_TRUE(b.Excursion(0.01, /*floor=*/0.002));
  EXPECT_FALSE(b.Excursion(1000.0, /*floor=*/2000.0));
}

// ---- AnomalyEngine ------------------------------------------------------------------------

// Two monitored links, one single-link path each — the minimal matrix on which flagged paths
// localize unambiguously.
struct TwoLinkNet {
  Topology topo{"two-link"};
  ProbeMatrix matrix;

  TwoLinkNet() : matrix(MakeMatrix(topo)) {}

  static ProbeMatrix MakeMatrix(Topology& topo) {
    std::vector<NodeId> nodes;
    for (int i = 0; i < 3; ++i) {
      nodes.push_back(topo.AddNode(NodeKind::kTor, 0, i, "n" + std::to_string(i)));
    }
    topo.AddLink(nodes[0], nodes[1], 1);
    topo.AddLink(nodes[1], nodes[2], 1);
    PathStore store;
    const LinkId path0[] = {0};
    const LinkId path1[] = {1};
    store.Add(0, 1, path0);
    store.Add(0, 2, path1);
    return ProbeMatrix(std::move(store), LinkIndex::ForMonitored(topo));
  }
};

// Cumulative running totals fed boundary by boundary, like the store produces them.
struct RunningFeed {
  Observations totals{2};
  std::vector<RttSketch> rtt{2};

  // Adds one boundary worth of traffic: `packets` probes per path, no loss, `samples` RTT
  // draws at `us0` on path 0 and `us1` on path 1.
  void Advance(int64_t packets, int samples, int64_t us0, int64_t us1) {
    for (size_t slot = 0; slot < 2; ++slot) {
      totals[slot].sent += packets;
      if (rtt[slot].empty()) {
        rtt[slot] = RttSketch(RttSketch::kDefaultBins);
      }
      for (int i = 0; i < samples; ++i) {
        rtt[slot].Record(slot == 0 ? us0 : us1);
      }
    }
  }
};

TEST(AnomalyEngine, SustainedLatencyShiftLocalizesTheLink) {
  TwoLinkNet net;
  AnomalyEngine engine;  // defaults: warmup 3, horizon 2
  RunningFeed feed;

  // Clean boundaries: both paths at ~100us. No anomalies during or after warmup.
  for (int boundary = 0; boundary < 5; ++boundary) {
    feed.Advance(400, 8, 100, 100);
    EXPECT_TRUE(engine.Observe(net.matrix, feed.totals, feed.rtt).empty())
        << "boundary " << boundary;
  }

  // Path 0's RTT shifts to 5ms with zero loss — a pure gray failure. The first excursive
  // boundary starts the run; the second reaches the horizon and flags.
  feed.Advance(400, 8, 5000, 100);
  EXPECT_TRUE(engine.Observe(net.matrix, feed.totals, feed.rtt).empty());
  feed.Advance(400, 8, 5000, 100);
  const std::vector<LinkAnomaly> anomalies = engine.Observe(net.matrix, feed.totals, feed.rtt);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].link, 0);
  EXPECT_EQ(anomalies[0].signal, kAnomalySignalLatency);
  EXPECT_GE(anomalies[0].sustained, 2);
  EXPECT_GT(anomalies[0].score, 0.0);
  EXPECT_EQ(std::string(AnomalySignalName(anomalies[0].signal)), "latency");

  // Back to normal: the excursion run breaks and the alarm clears.
  feed.Advance(400, 8, 100, 100);
  feed.Advance(400, 8, 100, 100);
  EXPECT_TRUE(engine.Observe(net.matrix, feed.totals, feed.rtt).empty());
}

TEST(AnomalyEngine, BeginWindowRebasesWithoutForgettingBaselines) {
  TwoLinkNet net;
  AnomalyEngine engine;
  RunningFeed feed;
  for (int boundary = 0; boundary < 5; ++boundary) {
    feed.Advance(400, 8, 100, 100);
    engine.Observe(net.matrix, feed.totals, feed.rtt);
  }

  // The store clears between aggregation windows: totals restart from zero. BeginWindow
  // re-bases the engine's previous-boundary totals so the first boundary of the new window
  // is an ordinary delta, not a giant negative one — and the learned baselines survive, so
  // a shift right after the window boundary still only needs `horizon` boundaries to flag.
  engine.BeginWindow();
  RunningFeed fresh;
  fresh.Advance(400, 8, 5000, 100);
  EXPECT_TRUE(engine.Observe(net.matrix, fresh.totals, fresh.rtt).empty());
  fresh.Advance(400, 8, 5000, 100);
  const std::vector<LinkAnomaly> anomalies =
      engine.Observe(net.matrix, fresh.totals, fresh.rtt);
  ASSERT_EQ(anomalies.size(), 1u);
  EXPECT_EQ(anomalies[0].link, 0);
}

TEST(AnomalyEngine, NegativeDeltaResetsTheSlotInsteadOfAlarming) {
  TwoLinkNet net;
  AnomalyEngine engine;
  RunningFeed feed;
  for (int boundary = 0; boundary < 5; ++boundary) {
    feed.Advance(400, 8, 100, 100);
    engine.Observe(net.matrix, feed.totals, feed.rtt);
  }
  // Totals that shrink (a watchdog retraction, or a missed window boundary) are not
  // observations; the slot re-bases silently.
  feed.totals[0].sent -= 1000;
  EXPECT_TRUE(engine.Observe(net.matrix, feed.totals, feed.rtt).empty());
  feed.Advance(400, 8, 100, 100);
  EXPECT_TRUE(engine.Observe(net.matrix, feed.totals, feed.rtt).empty());
}

// ---- ObservationStore: running RTT sketches vs the snapshot reference ---------------------

std::vector<RttSketch> SnapshotVector(const ObservationStore& store, size_t num_slots,
                                      const Watchdog& watchdog) {
  return store.RttSnapshot(num_slots, watchdog);
}

void ExpectRttAgreement(ObservationStore& store, size_t num_slots, const Watchdog& watchdog,
                        const std::string& when) {
  store.RunningTotals(num_slots, watchdog);  // folds pending records
  const std::span<const RttSketch> running = store.RttRunningTotals();
  const std::vector<RttSketch> snapshot = SnapshotVector(store, num_slots, watchdog);
  ASSERT_EQ(running.size(), snapshot.size()) << when;
  for (size_t i = 0; i < snapshot.size(); ++i) {
    EXPECT_EQ(running[i], snapshot[i]) << when << " slot " << i;
  }
}

TEST(ObservationStoreRtt, RunningSketchesMatchSnapshotUnderFlipsAndInvalidation) {
  // Three server nodes so the watchdog can flag pingers 0/1 and target 2.
  Topology topo("rtt-store");
  for (int i = 0; i < 3; ++i) {
    topo.AddNode(NodeKind::kServer, 0, i, "s" + std::to_string(i));
  }
  Watchdog watchdog(topo);
  ObservationStore store;
  store.EnsureSlots(4);

  RttSketch s0(RttSketch::kDefaultBins);
  s0.Record(100);
  s0.Record(140);
  RttSketch s1(RttSketch::kDefaultBins);
  s1.Record(90);

  ObservationStore::Shard& shard_a = store.OpenShard(/*pinger=*/0);
  ObservationStore::Shard& shard_b = store.OpenShard(/*pinger=*/1);
  shard_a.RecordPathWithRtt(0, /*target=*/2, 100, 1, s0);
  shard_b.RecordPathWithRtt(0, /*target=*/2, 100, 0, s1);  // replica: sketches merge
  shard_b.RecordPathWithRtt(1, /*target=*/2, 100, 0, s1);
  ExpectRttAgreement(store, 4, watchdog, "after initial records");

  // A watchdog flip retracts the flagged pinger's sketches together with its counters...
  watchdog.MarkDown(1);
  ExpectRttAgreement(store, 4, watchdog, "pinger 1 down");
  // ...and recovery re-adds them, bit-identically.
  watchdog.MarkUp(1);
  ExpectRttAgreement(store, 4, watchdog, "pinger 1 recovered");

  // Slot invalidation orphans the slot's sketch with its counters.
  const PathId stale[] = {0};
  store.InvalidateSlots(stale);
  ExpectRttAgreement(store, 4, watchdog, "slot 0 invalidated");

  // A report-plane record stamped with the pre-invalidation epoch orphans instead of folding;
  // one stamped with the current epoch folds.
  RttSketch late(RttSketch::kDefaultBins);
  late.Record(77);
  shard_a.RecordPathRttAtEpoch(0, /*epoch=*/0, /*target=*/2, late);
  shard_a.RecordPathRttAtEpoch(1, store.SlotEpoch(1), /*target=*/2, late);
  ExpectRttAgreement(store, 4, watchdog, "stale and current epoch records");
  const std::vector<RttSketch> merged = SnapshotVector(store, 4, watchdog);
  EXPECT_TRUE(merged[0].empty() || merged[0].total() == 0);  // stale record orphaned
  EXPECT_EQ(merged[1].total(), s1.total() + late.total());   // current record folded
}

// ---- Sealed windows, the log record, and the forensic queries -----------------------------

SealedWindow AnomalyWindow(uint64_t index, std::vector<LinkAnomaly> anomalies) {
  SealedWindow w;
  w.window_index = index;
  w.num_slots = 8;
  w.probes_sent = 1000;
  w.bytes_sent = 64000;
  SealedBoundary b;
  b.segment = 4;
  b.time_seconds = 30.0;
  b.deltas.push_back(SealedDelta{1, 500, 0});
  b.anomalies = std::move(anomalies);
  w.boundaries.push_back(b);
  return w;
}

TEST(AnomalyHistory, SealedAnomaliesSurviveTheLogRecord) {
  const ReportKey key;
  const SealedWindow w = AnomalyWindow(
      9, {LinkAnomaly{3, kAnomalySignalLatency, 0.75, 4},
          LinkAnomaly{5, static_cast<uint8_t>(kAnomalySignalLoss | kAnomalySignalLatency),
                      1.0, 2}});
  std::vector<uint8_t> bytes;
  EncodeWindowRecord(w, key, bytes);
  size_t pos = 0;
  SealedWindow back;
  ASSERT_EQ(DecodeWindowRecord(bytes, pos, key, back), WindowLogStatus::kOk);
  EXPECT_EQ(pos, bytes.size());
  EXPECT_EQ(back, w);
  ASSERT_EQ(back.boundaries.size(), 1u);
  EXPECT_EQ(back.boundaries[0].anomalies, w.boundaries[0].anomalies);
}

TEST(AnomalyHistory, QueriesRollUpPerWindowAndPerLink)
{
  std::vector<SealedWindow> windows;
  windows.push_back(AnomalyWindow(1, {}));
  windows.push_back(AnomalyWindow(2, {LinkAnomaly{3, kAnomalySignalLatency, 0.5, 2}}));
  // Window 3 names link 3 at two boundaries: still one flagged window.
  SealedWindow w3 = AnomalyWindow(3, {LinkAnomaly{3, kAnomalySignalLatency, 0.9, 5}});
  SealedBoundary extra;
  extra.segment = 8;
  extra.time_seconds = 60.0;
  extra.anomalies.push_back(LinkAnomaly{3, kAnomalySignalLoss, 0.4, 1});
  extra.anomalies.push_back(LinkAnomaly{7, kAnomalySignalLoss, 0.6, 3});
  w3.boundaries.push_back(extra);
  windows.push_back(w3);

  const QueryEngine engine(std::move(windows));
  const auto timeline = engine.LinkAnomalyTimeline(3);
  ASSERT_EQ(timeline.size(), 3u);
  EXPECT_FALSE(timeline[0].flagged);
  EXPECT_TRUE(timeline[1].flagged);
  EXPECT_EQ(timeline[1].signal, kAnomalySignalLatency);
  EXPECT_TRUE(timeline[2].flagged);
  EXPECT_EQ(timeline[2].signal, kAnomalySignalLoss | kAnomalySignalLatency);
  EXPECT_EQ(timeline[2].boundaries_flagged, 2u);
  EXPECT_EQ(timeline[2].max_sustained, 5);
  EXPECT_DOUBLE_EQ(timeline[2].max_score, 0.9);

  const auto top = engine.TopAnomalies();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].link, 3);
  EXPECT_EQ(top[0].windows_flagged, 2u);
  EXPECT_EQ(top[0].first_window, 2u);
  EXPECT_EQ(top[0].last_window, 3u);
  EXPECT_EQ(top[1].link, 7);
  EXPECT_EQ(top[1].windows_flagged, 1u);
}

// ---- End to end: bit-identity across threads and planes, retention carries anomalies ------

// In-memory sink capturing every sealed window, like the benches use.
class CollectingSink : public WindowSink {
 public:
  void OnWindowSealed(const SealedWindow& window) override { windows_.push_back(window); }
  const std::vector<SealedWindow>& windows() const { return windows_; }

 private:
  std::vector<SealedWindow> windows_;
};

struct AnomalyRun {
  std::vector<DetectorSystem::StreamingWindowResult> results;
  std::vector<SealedWindow> sealed;
  std::vector<RttSketch> final_rtt;
};

AnomalyRun RunGraySequence(const FatTreeRouting& routing, LinkId gray, size_t threads,
                           bool report_plane) {
  DetectorSystemOptions options;
  options.controller.packets_per_second = 50;
  options.segments_per_window = 4;
  options.diagnose_every_segments = 1;
  options.probe_threads = threads;
  options.report_plane = report_plane;
  options.anomaly = true;
  DetectorSystem system(routing, options);
  CollectingSink sink;
  system.set_history_sink(&sink);

  AnomalyRun run;
  Rng rng(2026);
  const FailureScenario clean;
  const FailureScenario scenario = GrayLatencyScenario(gray, /*added_delay_us=*/2500.0);
  for (int w = 0; w < 4; ++w) {
    run.results.push_back(system.RunWindowStreaming(w < 2 ? clean : scenario, {}, rng));
  }
  run.sealed = sink.windows();
  const std::span<const RttSketch> rtt = system.last_window_rtt_totals();
  run.final_rtt.assign(rtt.begin(), rtt.end());
  return run;
}

TEST(AnomalyEndToEnd, WindowsBitIdenticalAcrossThreadsAndPlanes) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  Rng pick(99);
  const LinkId gray = SampleMonitoredLink(ft.topology(), pick);

  const AnomalyRun reference = RunGraySequence(routing, gray, /*threads=*/1, false);
  const AnomalyRun threaded = RunGraySequence(routing, gray, /*threads=*/2, false);
  const AnomalyRun reported = RunGraySequence(routing, gray, /*threads=*/1, true);

  // Non-vacuous: the gray windows must actually raise anomalies naming the gray link, and
  // the merged sketches must carry samples.
  bool gray_named = false;
  for (const auto& result : reference.results) {
    for (const auto& diagnosis : result.timeline) {
      for (const LinkAnomaly& anomaly : diagnosis.anomalies) {
        gray_named = gray_named || (anomaly.link == gray &&
                                    (anomaly.signal & kAnomalySignalLatency) != 0);
      }
    }
  }
  EXPECT_TRUE(gray_named);
  int64_t samples = 0;
  for (const RttSketch& sketch : reference.final_rtt) {
    samples += sketch.total();
  }
  EXPECT_GT(samples, 0);

  for (const AnomalyRun* other : {&threaded, &reported}) {
    const std::string which = other == &threaded ? "2 threads" : "report plane";
    ASSERT_EQ(other->results.size(), reference.results.size()) << which;
    for (size_t w = 0; w < reference.results.size(); ++w) {
      const std::string when = which + " window " + std::to_string(w);
      ExpectIdenticalWindows(reference.results[w].window, other->results[w].window, when);
      ASSERT_EQ(other->results[w].timeline.size(), reference.results[w].timeline.size())
          << when;
      for (size_t t = 0; t < reference.results[w].timeline.size(); ++t) {
        EXPECT_EQ(other->results[w].timeline[t].anomalies,
                  reference.results[w].timeline[t].anomalies)
            << when << " boundary " << t;
      }
    }
    EXPECT_EQ(other->final_rtt, reference.final_rtt) << which;
    // The sealed windows (anomalies included) are bit-identical too — retention records the
    // same forensic timeline whichever execution shape produced it.
    EXPECT_EQ(other->sealed, reference.sealed) << which;
  }

  // And the sealed anomalies flow into the forensic queries: the gray link tops the rollup.
  QueryEngine engine(reference.sealed);
  const auto top = engine.TopAnomalies();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].link, gray);
}

}  // namespace
}  // namespace detector
