// Tests for the paper's secondary mechanisms: latency-as-loss detection (§1), statistical
// hypothesis testing for noisy-data filtering (§5.1 footnote 3), and the evenness-term
// ablation of the PMC score (Eq. 1).
#include <gtest/gtest.h>

#include "src/localize/hypothesis.h"
#include "src/localize/pll.h"
#include "src/pmc/pmc.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/latency_model.h"
#include "src/sim/probe_engine.h"

namespace detector {
namespace {

// ---------- latency-as-loss ----------

class LatencyAsLoss : public ::testing::Test {
 protected:
  LatencyAsLoss() : ft_(4), model_(LatencyModelOptions{}) {}

  FatTree ft_;
  LatencyModel model_;
};

TEST_F(LatencyAsLoss, CongestedLinkManifestsAsLoss) {
  // No packet drops anywhere, but one link runs at 97% utilization: RTTs through it blow past
  // the timeout and must surface as losses.
  FailureScenario no_drops;
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft_.topology(), no_drops, config);

  std::vector<double> load(ft_.topology().NumLinks(), 0.0);
  const LinkId congested = ft_.EdgeAggLink(0, 0, 0);
  load[static_cast<size_t>(congested)] = 970.0;  // of 1000 Mbps
  engine.AttachLatencyModel(&model_, load, /*timeout_rtt_us=*/2000.0);
  EXPECT_TRUE(engine.latency_as_loss());

  Rng rng(1);
  const std::vector<LinkId> hot{congested, ft_.AggCoreLink(0, 0, 0)};
  const std::vector<LinkId> cold{ft_.EdgeAggLink(1, 0, 0), ft_.AggCoreLink(1, 0, 0)};
  const auto hot_obs = engine.SimulatePath(hot, ft_.Tor(0, 0), ft_.Core(0, 0), 500, rng);
  const auto cold_obs = engine.SimulatePath(cold, ft_.Tor(1, 0), ft_.Core(0, 0), 500, rng);
  EXPECT_GT(hot_obs.lost, 100);  // heavy queueing: many timeouts
  EXPECT_LT(cold_obs.lost, 20);
}

TEST_F(LatencyAsLoss, DetachRestoresPureLossSemantics) {
  FailureScenario no_drops;
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft_.topology(), no_drops, config);
  std::vector<double> load(ft_.topology().NumLinks(), 970.0);
  engine.AttachLatencyModel(&model_, load, 1000.0);
  engine.DetachLatencyModel();
  Rng rng(2);
  const std::vector<LinkId> path{ft_.EdgeAggLink(0, 0, 0)};
  EXPECT_EQ(engine.SimulatePath(path, ft_.Tor(0, 0), ft_.Agg(0, 0), 200, rng).lost, 0);
}

TEST_F(LatencyAsLoss, LocalizablеThroughPll) {
  // End to end: the congested link is localized by PLL exactly like a drop failure.
  const FatTreeRouting routing(ft_);
  PmcOptions pmc;
  pmc.alpha = 3;
  pmc.beta = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;

  FailureScenario no_drops;
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft_.topology(), no_drops, config);
  std::vector<double> load(ft_.topology().NumLinks(), 0.0);
  const LinkId congested = ft_.AggCoreLink(2, 1, 0);
  load[static_cast<size_t>(congested)] = 975.0;
  engine.AttachLatencyModel(&model_, load, 2500.0);

  Rng rng(3);
  Observations obs(matrix.NumPaths());
  for (size_t p = 0; p < matrix.NumPaths(); ++p) {
    const PathId pid = static_cast<PathId>(p);
    obs[p] = engine.SimulatePath(matrix.paths().Links(pid), matrix.paths().src(pid),
                                 matrix.paths().dst(pid), 200, rng);
  }
  const auto result = PllLocalizer().Localize(matrix, obs);
  ASSERT_GE(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, congested);
}

// ---------- hypothesis-test noise filter ----------

TEST(PathLossTester, AmbientNoiseNotFlagged) {
  HypothesisTestOptions options;
  options.ambient_loss_rate = 1e-3;
  PathLossTester tester(2, options);
  Rng rng(4);
  for (int w = 0; w < 20; ++w) {
    Observations window(2);
    window[0] = {1000, rng.NextBinomial(1000, 1e-3)};  // exactly ambient
    window[1] = {1000, 0};
    tester.AddWindow(window);
  }
  EXPECT_FALSE(tester.IsLossy(0));
  EXPECT_FALSE(tester.IsLossy(1));
  EXPECT_EQ(tester.windows_seen(), 20);
}

TEST(PathLossTester, PersistentLowRateLossFlaggedOverTime) {
  // 5e-3 loss on a path: a single window straddles the fixed threshold, but accumulating
  // windows drives the z-score over the bar — the footnote-3 mechanism.
  HypothesisTestOptions options;
  options.ambient_loss_rate = 1e-3;
  PathLossTester tester(1, options);
  Rng rng(5);
  bool flagged_single_window;
  {
    Observations window(1);
    window[0] = {300, rng.NextBinomial(300, 5e-3)};
    tester.AddWindow(window);
    flagged_single_window = tester.IsLossy(0);
  }
  for (int w = 0; w < 40; ++w) {
    Observations window(1);
    window[0] = {300, rng.NextBinomial(300, 5e-3)};
    tester.AddWindow(window);
  }
  EXPECT_TRUE(tester.IsLossy(0));
  EXPECT_GT(tester.ZScore(0), options.significance_z);
  // The accumulated totals support rate estimation over the horizon.
  EXPECT_GT(tester.Accumulated(0).sent, 12000);
  (void)flagged_single_window;  // may or may not fire; the point is the accumulated verdict
}

TEST(PathLossTester, MinProbesGate) {
  PathLossTester tester(1);
  Observations window(1);
  window[0] = {10, 10};  // catastrophic but tiny sample
  tester.AddWindow(window);
  EXPECT_FALSE(tester.IsLossy(0));
  EXPECT_EQ(tester.ZScore(0), 0.0);
}

TEST(PathLossTester, MaskAndReset) {
  HypothesisTestOptions options;
  options.ambient_loss_rate = 1e-4;
  PathLossTester tester(3, options);
  Observations window(3);
  window[0] = {1000, 200};
  window[1] = {1000, 0};
  window[2] = {10, 5};
  tester.AddWindow(window);
  EXPECT_EQ(tester.LossyMask(), (std::vector<uint8_t>{1, 0, 0}));
  tester.Reset();
  EXPECT_EQ(tester.LossyMask(), (std::vector<uint8_t>{0, 0, 0}));
  EXPECT_EQ(tester.windows_seen(), 0);
}

// ---------- evenness-term ablation ----------

TEST(EvennessAblation, TermTightensCoverageSpread) {
  const FatTree ft(8);
  const FatTreeRouting routing(ft);
  const PathStore candidates = routing.Enumerate(PathEnumMode::kFull);
  PmcOptions with;
  with.alpha = 2;
  with.beta = 1;
  with.evenness_term = true;
  PmcOptions without = with;
  without.evenness_term = false;
  const auto m_with =
      BuildProbeMatrixFromCandidates(ft.topology(), candidates, with).matrix.Coverage();
  const auto m_without =
      BuildProbeMatrixFromCandidates(ft.topology(), candidates, without).matrix.Coverage();
  EXPECT_LE(m_with.max - m_with.min, m_without.max - m_without.min);
  // Both still satisfy the hard alpha constraint.
  EXPECT_GE(m_with.min, 2);
  EXPECT_GE(m_without.min, 2);
}

}  // namespace
}  // namespace detector
