// System-layer tests: pinglist XML round trip, controller assignment invariants, pinger
// windows, diagnoser aggregation/outlier handling, and end-to-end detection+localization.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/detector/controller.h"
#include "src/detector/diagnoser.h"
#include "src/detector/pinger.h"
#include "src/detector/responder.h"
#include "src/detector/system.h"
#include "src/localize/metrics.h"
#include "src/pmc/structured_fattree.h"
#include "src/routing/bcube_routing.h"
#include "src/routing/fattree_routing.h"

namespace detector {
namespace {

TEST(Pinglist, XmlRoundTrip) {
  Pinglist list;
  list.version = 7;
  list.pinger = 42;
  list.packets_per_second = 12.5;
  list.port_count = 16;
  PinglistEntry e1;
  e1.path_id = 3;
  e1.target_server = 99;
  e1.route = {1, 2, 3, 4};
  PinglistEntry e2;
  e2.path_id = PinglistEntry::kIntraRackPath;
  e2.target_server = 100;
  e2.route = {5, 6};
  list.entries = {e1, e2};

  const Pinglist parsed = Pinglist::FromXml(list.ToXml());
  EXPECT_EQ(parsed.version, 7);
  EXPECT_EQ(parsed.pinger, 42);
  EXPECT_DOUBLE_EQ(parsed.packets_per_second, 12.5);
  EXPECT_EQ(parsed.port_count, 16);
  ASSERT_EQ(parsed.entries.size(), 2u);
  EXPECT_EQ(parsed.entries[0].path_id, 3);
  EXPECT_EQ(parsed.entries[0].route, (std::vector<LinkId>{1, 2, 3, 4}));
  EXPECT_EQ(parsed.entries[1].path_id, PinglistEntry::kIntraRackPath);
  EXPECT_EQ(parsed.entries[1].target_server, 100);
}

class ControllerTest : public ::testing::Test {
 protected:
  ControllerTest() : ft_(4), routing_(ft_) {
    PmcOptions pmc;
    pmc.alpha = 1;
    pmc.beta = 1;
    matrix_ = BuildProbeMatrix(routing_, PathEnumMode::kFull, pmc).matrix;
  }

  FatTree ft_;
  FatTreeRouting routing_;
  ProbeMatrix matrix_;
};

TEST_F(ControllerTest, EveryPathReplicatedTwice) {
  Watchdog wd(ft_.topology());
  ControllerOptions options;
  options.intra_rack_probes = false;
  Controller controller(ft_.topology(), options);
  const auto pinglists = controller.BuildPinglists(matrix_, wd);

  std::map<PathId, int> replicas;
  std::map<PathId, std::set<NodeId>> pingers_of_path;
  for (const auto& list : pinglists) {
    for (const auto& entry : list.entries) {
      ++replicas[entry.path_id];
      pingers_of_path[entry.path_id].insert(list.pinger);
    }
  }
  EXPECT_EQ(replicas.size(), matrix_.NumPaths());
  for (const auto& [path, count] : replicas) {
    EXPECT_EQ(count, 2) << "path " << path;
    EXPECT_EQ(pingers_of_path[path].size(), 2u) << "replicas must be distinct pingers";
  }
}

TEST_F(ControllerTest, RoutesIncludeServerLinksAtBothEnds) {
  Watchdog wd(ft_.topology());
  ControllerOptions options;
  options.intra_rack_probes = false;
  Controller controller(ft_.topology(), options);
  const auto pinglists = controller.BuildPinglists(matrix_, wd);
  for (const auto& list : pinglists) {
    for (const auto& entry : list.entries) {
      ASSERT_GE(entry.route.size(), 2u);
      const Link& first = ft_.topology().link(entry.route.front());
      const Link& last = ft_.topology().link(entry.route.back());
      EXPECT_TRUE(first.a == list.pinger || first.b == list.pinger);
      EXPECT_TRUE(last.a == entry.target_server || last.b == entry.target_server);
      EXPECT_EQ(first.tier, 0);
      EXPECT_EQ(last.tier, 0);
    }
  }
}

TEST_F(ControllerTest, UnhealthyServersNotUsed) {
  Watchdog wd(ft_.topology());
  // Down every first server in each rack: the controller must use the others.
  for (int p = 0; p < 4; ++p) {
    for (int e = 0; e < 2; ++e) {
      wd.MarkDown(ft_.Server(p, e, 0));
    }
  }
  Controller controller(ft_.topology(), ControllerOptions{});
  const auto pinglists = controller.BuildPinglists(matrix_, wd);
  EXPECT_FALSE(pinglists.empty());
  for (const auto& list : pinglists) {
    EXPECT_TRUE(wd.IsHealthy(list.pinger));
    for (const auto& entry : list.entries) {
      EXPECT_TRUE(wd.IsHealthy(entry.target_server));
    }
  }
}

TEST_F(ControllerTest, IntraRackProbesCoverServerLinks) {
  Watchdog wd(ft_.topology());
  ControllerOptions options;
  options.intra_rack_probes = true;
  Controller controller(ft_.topology(), options);
  const auto pinglists = controller.BuildPinglists(matrix_, wd);
  std::set<LinkId> covered_server_links;
  for (const auto& list : pinglists) {
    for (const auto& entry : list.entries) {
      if (entry.path_id == PinglistEntry::kIntraRackPath) {
        for (LinkId l : entry.route) {
          EXPECT_EQ(ft_.topology().link(l).tier, 0);
          covered_server_links.insert(l);
        }
      }
    }
  }
  // Every server link of a non-pinger server is probed (pinger's own link is covered by its
  // outgoing matrix probes).
  EXPECT_GT(covered_server_links.size(), ft_.topology().CountNodes(NodeKind::kServer) / 2);
}

TEST(ControllerBcube, ServerEndpointsPingThemselves) {
  const Bcube bc(4, 1);
  const BcubeRouting routing(bc);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  Watchdog wd(bc.topology());
  ControllerOptions options;
  options.intra_rack_probes = false;
  Controller controller(bc.topology(), options);
  const auto pinglists = controller.BuildPinglists(matrix, wd);
  size_t entries = 0;
  for (const auto& list : pinglists) {
    for (const auto& entry : list.entries) {
      ++entries;
      EXPECT_EQ(matrix.paths().src(entry.path_id), list.pinger);
      EXPECT_EQ(matrix.paths().dst(entry.path_id), entry.target_server);
    }
  }
  EXPECT_EQ(entries, matrix.NumPaths());  // no replication possible: src is the pinger
}

TEST(Pinger, WindowBudgetAndConfirmation) {
  const FatTree ft(4);
  Pinglist list;
  list.pinger = ft.Server(0, 0, 0);
  list.packets_per_second = 10;
  PinglistEntry entry;
  entry.path_id = 0;
  entry.target_server = ft.Server(1, 0, 0);
  entry.route = {ft.ServerLink(0, 0, 0), ft.EdgeAggLink(0, 0, 0), ft.AggCoreLink(0, 0, 0),
                 ft.AggCoreLink(1, 0, 0), ft.EdgeAggLink(1, 0, 0), ft.ServerLink(1, 0, 0)};
  list.entries.push_back(entry);

  // Full loss on the path: every probe lost, and each window confirms with 2 extra packets.
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);
  ProbeEngine engine(ft.topology(), scenario, ProbeConfig{});
  Rng rng(3);
  Pinger pinger(list, /*confirm_packets=*/2);
  const auto window = pinger.RunWindow(engine, 30.0, rng);
  ASSERT_EQ(window.reports.size(), 1u);
  EXPECT_EQ(window.reports[0].sent, 300 + 2);
  EXPECT_EQ(window.reports[0].lost, window.reports[0].sent);
  EXPECT_EQ(window.probes_sent, 302);
  EXPECT_GT(window.bytes_sent, 0);
}

TEST(Diagnoser, MergesReplicasAndDropsOutliers) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  Watchdog wd(ft.topology());
  Diagnoser diagnoser;

  PingerWindowResult w1;
  w1.pinger = ft.Server(0, 0, 0);
  w1.reports.push_back(PathReport{0, ft.Server(1, 0, 0), 100, 10});
  PingerWindowResult w2;
  w2.pinger = ft.Server(0, 0, 1);
  w2.reports.push_back(PathReport{0, ft.Server(1, 0, 0), 100, 8});
  PingerWindowResult bad;
  bad.pinger = ft.Server(2, 0, 0);
  bad.reports.push_back(PathReport{1, ft.Server(1, 0, 1), 100, 100});
  wd.MarkDown(bad.pinger);

  diagnoser.Ingest(w1);
  diagnoser.Ingest(w2);
  diagnoser.Ingest(bad);
  const Observations obs = diagnoser.AggregatedObservations(matrix, wd);
  EXPECT_EQ(obs[0].sent, 200);
  EXPECT_EQ(obs[0].lost, 18);
  EXPECT_EQ(obs[1].sent, 0);  // outlier discarded
}

TEST(Diagnoser, ServerLinkAlarmsFromIntraRackProbes) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  Diagnoser diagnoser;
  PingerWindowResult w;
  w.pinger = ft.Server(0, 0, 0);
  w.reports.push_back(
      PathReport{PinglistEntry::kIntraRackPath, ft.Server(0, 0, 1), 100, 50});
  w.reports.push_back(PathReport{PinglistEntry::kIntraRackPath, ft.Server(0, 1, 0), 100, 0});
  diagnoser.Ingest(w);
  const auto alarms = diagnoser.ServerLinkAlarms(wd);
  ASSERT_EQ(alarms.size(), 1u);
  EXPECT_EQ(alarms[0].target, ft.Server(0, 0, 1));
  EXPECT_NEAR(alarms[0].loss_ratio, 0.5, 1e-9);
}

TEST(Responder, EchoesWhileAlive) {
  Responder responder(7);
  EXPECT_TRUE(responder.HandleProbe());
  responder.set_alive(false);
  EXPECT_FALSE(responder.HandleProbe());
  EXPECT_EQ(responder.probes_received(), 2);
  EXPECT_EQ(responder.echoes_sent(), 1);
}

TEST(DetectorSystem, EndToEndLocalizesInjectedFailure) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 3;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;  // plenty of samples in one window
  DetectorSystem system(routing, options);
  EXPECT_GT(system.probe_matrix().NumPaths(), 0u);
  EXPECT_FALSE(system.pinglists().empty());

  FailureModel model(ft.topology(), FailureModelOptions{});
  Rng rng(77);
  int correct = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const FailureScenario scenario = model.SampleLinkFailures(1, rng);
    const auto window = system.RunWindow(scenario, rng);
    const auto counts = EvaluateLocalization(window.localization.links, scenario.FailedLinks());
    correct += counts.true_positives == 1 ? 1 : 0;
    EXPECT_DOUBLE_EQ(window.detection_latency_seconds, 30.0);
    EXPECT_GT(window.probes_sent, 0);
  }
  // Random partial losses near 1e-4 can legitimately hide in one 30 s window (the paper's own
  // false-negative analysis in §6.4); most scenarios must still localize.
  EXPECT_GE(correct, trials * 2 / 3);
}

TEST(DetectorSystem, StructuredMatrixConstructor) {
  const FatTree ft(8);
  ProbeMatrix matrix = StructuredFatTreeProbeMatrix(ft, 1, 1);
  DetectorSystemOptions options;
  DetectorSystem system(ft.topology(), matrix, options);
  EXPECT_EQ(system.probe_matrix().NumPaths(), matrix.NumPaths());

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(2, 1, 1);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);
  Rng rng(5);
  const auto window = system.RunWindow(scenario, rng);
  ASSERT_GE(window.localization.links.size(), 1u);
  EXPECT_EQ(window.localization.links[0].link, f.link);
}

TEST(DetectorSystem, RecomputeCycleAfterServerFailure) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);
  const NodeId down = system.pinglists().front().pinger;
  system.watchdog().MarkDown(down);
  system.RecomputeCycle();
  for (const auto& list : system.pinglists()) {
    EXPECT_NE(list.pinger, down);
  }
}

}  // namespace
}  // namespace detector
