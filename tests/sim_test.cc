// Simulator tests: loss-model semantics, probe-engine statistics (binomial vs per-packet mode
// agreement), failure sampling distributions, workload and latency models.
#include <gtest/gtest.h>

#include <cmath>

#include "src/sim/failure_model.h"
#include "src/sim/latency_model.h"
#include "src/sim/loss_model.h"
#include "src/sim/probe_engine.h"
#include "src/sim/watchdog.h"
#include "src/sim/workload.h"
#include "src/topo/fattree.h"

namespace detector {
namespace {

FlowKey MakeFlow(NodeId src, NodeId dst, uint16_t sport = 1000) {
  return FlowKey{src, dst, sport, 2000, 17};
}

TEST(LossModel, FullLossDropsEverything) {
  LinkFailure f;
  f.type = FailureType::kFullLoss;
  EXPECT_DOUBLE_EQ(f.DropProbability(MakeFlow(0, 1)), 1.0);
}

TEST(LossModel, RandomPartialUsesRate) {
  LinkFailure f;
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.25;
  EXPECT_DOUBLE_EQ(f.DropProbability(MakeFlow(0, 1)), 0.25);
}

TEST(LossModel, DeterministicPartialIsPerFlowStable) {
  LinkFailure f;
  f.type = FailureType::kDeterministicPartial;
  f.match_fraction = 0.5;
  f.rule_seed = 99;
  int matched = 0;
  for (uint16_t port = 0; port < 200; ++port) {
    const FlowKey flow = MakeFlow(1, 2, port);
    const bool m1 = f.FlowMatchesRule(flow);
    const bool m2 = f.FlowMatchesRule(flow);
    EXPECT_EQ(m1, m2);  // same flow, same verdict, always
    matched += m1 ? 1 : 0;
  }
  // Roughly half the flow space matches.
  EXPECT_GT(matched, 60);
  EXPECT_LT(matched, 140);
}

TEST(ProbeEngine, HealthyPathLosesAlmostNothing) {
  const FatTree ft(4);
  FailureScenario scenario;
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft.topology(), scenario, config);
  Rng rng(1);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0), ft.AggCoreLink(0, 0, 0)};
  const auto obs = engine.SimulatePath(path, ft.Tor(0, 0), ft.Tor(1, 0), 1000, rng);
  EXPECT_EQ(obs.sent, 1000);
  EXPECT_EQ(obs.lost, 0);
}

TEST(ProbeEngine, FullLossKillsPath) {
  const FatTree ft(4);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);
  ProbeEngine engine(ft.topology(), scenario, ProbeConfig{});
  Rng rng(2);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0), ft.AggCoreLink(0, 0, 0)};
  const auto obs = engine.SimulatePath(path, ft.Tor(0, 0), ft.Tor(1, 0), 500, rng);
  EXPECT_EQ(obs.lost, 500);
}

TEST(ProbeEngine, RandomPartialRoundTripStatistics) {
  const FatTree ft(4);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 0, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.2;
  scenario.failures.push_back(f);
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft.topology(), scenario, config);
  Rng rng(3);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0)};
  const int n = 200000;
  const auto obs = engine.SimulatePath(path, ft.Tor(0, 0), ft.Agg(0, 0), n, rng);
  // Round trip crosses the link twice: loss = 1 - 0.8^2 = 0.36.
  EXPECT_NEAR(static_cast<double>(obs.lost) / n, 0.36, 0.01);
}

TEST(ProbeEngine, DeterministicPartialAffectsMatchingFlowsOnly) {
  const FatTree ft(4);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 0, 0);
  f.type = FailureType::kDeterministicPartial;
  f.match_fraction = 0.5;
  f.rule_seed = 7;
  scenario.failures.push_back(f);
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  config.port_count = 64;
  ProbeEngine engine(ft.topology(), scenario, config);
  Rng rng(4);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0)};
  const auto obs = engine.SimulatePath(path, ft.Tor(0, 0), ft.Agg(0, 0), 6400, rng);
  const double ratio = static_cast<double>(obs.lost) / static_cast<double>(obs.sent);
  // Some flows fully black, others clean: aggregate loss strictly between.
  EXPECT_GT(ratio, 0.2);
  EXPECT_LT(ratio, 0.95);
  // Per-flow: either all packets or none are lost.
  for (uint16_t port = 0; port < 8; ++port) {
    const FlowKey flow = MakeFlow(ft.Tor(0, 0), ft.Agg(0, 0), port);
    const auto per_flow = engine.SimulateFlow(path, flow, 100, rng);
    EXPECT_TRUE(per_flow.lost == 0 || per_flow.lost == 100);
  }
}

TEST(ProbeEngine, PacketAndBinomialModesAgree) {
  const FatTree ft(4);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 0, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.3;
  scenario.failures.push_back(f);
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft.topology(), scenario, config);
  Rng rng(5);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0), ft.AggCoreLink(0, 0, 0)};
  const FlowKey flow = MakeFlow(ft.Tor(0, 0), ft.Core(0, 0));

  const int n = 50000;
  int packet_losses = 0;
  for (int i = 0; i < n; ++i) {
    if (!engine.SimulatePacket(path, flow, rng)) {
      ++packet_losses;
    }
  }
  const auto binom = engine.SimulateFlow(path, flow, n, rng);
  const double p1 = static_cast<double>(packet_losses) / n;
  const double p2 = static_cast<double>(binom.lost) / n;
  EXPECT_NEAR(p1, p2, 0.01);
}

TEST(ProbeEngine, DroppedLinkReported) {
  const FatTree ft(4);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft.topology(), scenario, config);
  Rng rng(6);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0), ft.AggCoreLink(0, 0, 0)};
  LinkId dropped = kInvalidLink;
  EXPECT_FALSE(engine.SimulatePacket(path, MakeFlow(ft.Tor(0, 0), ft.Core(0, 0)), rng, &dropped));
  EXPECT_EQ(dropped, ft.AggCoreLink(0, 0, 0));
}

TEST(ProbeEngine, DeactivatedFailuresHeal) {
  const FatTree ft(4);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft.topology(), scenario, config);
  engine.SetFailuresActive(false);
  Rng rng(7);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0)};
  const auto obs = engine.SimulatePath(path, ft.Tor(0, 0), ft.Agg(0, 0), 100, rng);
  EXPECT_EQ(obs.lost, 0);
}

TEST(ProbeEngine, OneWayPrefixProbability) {
  const FatTree ft(4);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);
  ProbeConfig config;
  config.base_loss_rate = 0.0;
  ProbeEngine engine(ft.topology(), scenario, config);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0), ft.AggCoreLink(0, 0, 0)};
  const FlowKey flow = MakeFlow(ft.Tor(0, 0), ft.Core(0, 0));
  EXPECT_DOUBLE_EQ(
      engine.OneWaySuccessProbability(std::span<const LinkId>(path.data(), 1), flow), 1.0);
  EXPECT_DOUBLE_EQ(
      engine.OneWaySuccessProbability(std::span<const LinkId>(path.data(), 2), flow), 0.0);
}

TEST(FailureModel, SamplesRequestedCount) {
  const FatTree ft(8);
  FailureModel model(ft.topology(), FailureModelOptions{});
  Rng rng(8);
  for (int n : {1, 5, 20}) {
    const auto scenario = model.SampleLinkFailures(n, rng);
    EXPECT_EQ(scenario.failures.size(), static_cast<size_t>(n));
    EXPECT_EQ(scenario.FailedLinks().size(), static_cast<size_t>(n));  // distinct links
    for (const auto& f : scenario.failures) {
      EXPECT_TRUE(ft.topology().link(f.link).monitored);
    }
  }
}

TEST(FailureModel, TypeMixRoughlyMatchesConfig) {
  const FatTree ft(8);
  FailureModelOptions options;
  options.full_loss_fraction = 0.5;
  options.deterministic_fraction = 0.25;
  FailureModel model(ft.topology(), options);
  Rng rng(9);
  int full = 0;
  int det = 0;
  int rand_partial = 0;
  const int trials = 3000;
  for (int i = 0; i < trials; ++i) {
    const auto s = model.SampleLinkFailures(1, rng);
    switch (s.failures[0].type) {
      case FailureType::kFullLoss:
        ++full;
        break;
      case FailureType::kDeterministicPartial:
        ++det;
        break;
      case FailureType::kRandomPartial:
        ++rand_partial;
        break;
    }
  }
  EXPECT_NEAR(full / static_cast<double>(trials), 0.5, 0.05);
  EXPECT_NEAR(det / static_cast<double>(trials), 0.25, 0.05);
  EXPECT_NEAR(rand_partial / static_cast<double>(trials), 0.25, 0.05);
}

TEST(FailureModel, SwitchFailureCoversAllAdjacentLinks) {
  const FatTree ft(4);
  FailureModel model(ft.topology(), FailureModelOptions{});
  Rng rng(10);
  const auto scenario = model.SampleSwitchFailure(NodeKind::kAgg, rng);
  ASSERT_EQ(scenario.down_switches.size(), 1u);
  // An agg switch has k = 4 monitored links (k/2 down + k/2 up).
  EXPECT_EQ(scenario.failures.size(), 4u);
  for (const auto& f : scenario.failures) {
    const Link& l = ft.topology().link(f.link);
    EXPECT_TRUE(l.a == scenario.down_switches[0] || l.b == scenario.down_switches[0]);
    EXPECT_EQ(f.type, FailureType::kFullLoss);
  }
}

TEST(FailureModel, TierWeightsZeroExcludesTier) {
  const FatTree ft(4);
  FailureModelOptions options;
  options.tier_weights = {0.0, 1.0, 0.0};  // only ToR-agg links
  FailureModel model(ft.topology(), options);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto s = model.SampleLinkFailures(1, rng);
    EXPECT_EQ(ft.topology().link(s.failures[0].link).tier, 1);
  }
}

TEST(Watchdog, TracksHealth) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  const NodeId server = ft.Server(0, 0, 0);
  EXPECT_TRUE(wd.IsHealthy(server));
  wd.MarkDown(server);
  EXPECT_FALSE(wd.IsHealthy(server));
  EXPECT_EQ(wd.NumDown(), 1u);
  wd.MarkUp(server);
  EXPECT_TRUE(wd.IsHealthy(server));
}

TEST(Workload, GeneratesRoutedFlows) {
  const FatTree ft(4);
  WorkloadOptions options;
  options.flows_per_server = 2;
  WorkloadGenerator gen(ft, options);
  Rng rng(12);
  const auto flows = gen.Generate(rng);
  EXPECT_EQ(flows.size(), ft.topology().CountNodes(NodeKind::kServer) * 2);
  for (const auto& flow : flows) {
    EXPECT_NE(flow.key.src, flow.key.dst);
    EXPECT_GT(flow.mbps, 0.0);
    EXPECT_GE(flow.links.size(), 2u);  // at least the two server links
  }
  const auto load = gen.LinkLoadMbps(flows);
  double total = 0;
  for (double l : load) {
    total += l;
  }
  EXPECT_GT(total, 0.0);
}

TEST(Latency, RttGrowsWithLoad) {
  const FatTree ft(4);
  LatencyModel model(LatencyModelOptions{});
  Rng rng(13);
  const std::vector<LinkId> path{ft.EdgeAggLink(0, 0, 0), ft.AggCoreLink(0, 0, 0)};
  std::vector<double> idle(ft.topology().NumLinks(), 0.0);
  std::vector<double> busy(ft.topology().NumLinks(), 900.0);  // 90% utilization
  double idle_total = 0;
  double busy_total = 0;
  for (int i = 0; i < 2000; ++i) {
    idle_total += model.SampleRttUs(path, idle, rng);
    busy_total += model.SampleRttUs(path, busy, rng);
  }
  EXPECT_GT(busy_total, idle_total * 3);
}

}  // namespace
}  // namespace detector
