// Shared exact-equality assertions for window results. The bit-exactness gates (parallel vs
// serial shards, streaming vs batch diagnosis) mean *every* observable field, doubles
// included — SuspectLink::operator== and ServerLinkAlarm::operator== keep the field lists in
// one place, so a field added to either type is automatically compared here.
#ifndef TESTS_WINDOW_EQUALITY_H_
#define TESTS_WINDOW_EQUALITY_H_

#include <gtest/gtest.h>

#include <string>

#include "src/detector/system.h"

namespace detector {

inline void ExpectIdenticalLocalizations(const LocalizeResult& a, const LocalizeResult& b,
                                         const std::string& when) {
  EXPECT_EQ(a.links, b.links) << when;
}

// Everything observable about a window except wall-clock.
inline void ExpectIdenticalWindows(const DetectorSystem::WindowResult& a,
                                   const DetectorSystem::WindowResult& b,
                                   const std::string& when) {
  EXPECT_EQ(a.probes_sent, b.probes_sent) << when;
  EXPECT_EQ(a.bytes_sent, b.bytes_sent) << when;
  EXPECT_EQ(a.churn_events_applied, b.churn_events_applied) << when;
  EXPECT_EQ(a.localization.links, b.localization.links) << when;
  EXPECT_EQ(a.server_link_alarms, b.server_link_alarms) << when;
  EXPECT_EQ(a.anomalies, b.anomalies) << when;
}

}  // namespace detector

#endif  // TESTS_WINDOW_EQUALITY_H_
