// Report-plane tests: wire-format round-trips and robustness (truncated / corrupted / short
// frames must decode to an error, never crash or partially fold), collector tolerance
// (duplicate and out-of-order delivery keep totals bit-identical; stale windows and queue
// overflow drop cleanly), transport fault injection, the report-vs-direct bit-exactness gate
// at 1, 2 and 8 probe threads, and real UDP over localhost (skipped with a notice when the
// sandbox forbids sockets).
#include <gtest/gtest.h>

#include <cstdio>
#include <vector>

#include "src/common/crc32.h"
#include "src/detector/system.h"
#include "src/net/loopback.h"
#include "src/net/udp.h"
#include "src/report/codec.h"
#include "src/report/collector.h"
#include "src/report/emitter.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

ReportFrame SampleFrame() {
  ReportFrame frame;
  frame.pinger = 42;
  frame.window_id = 7;
  frame.seq = 3;
  frame.paths.push_back(WirePathDelta{5, 0, 101, 120, 4});
  frame.paths.push_back(WirePathDelta{2, 1, 99, 64, 0});  // out-of-order slot (zigzag delta)
  frame.paths.push_back(WirePathDelta{700, 0, 101, 1, 1});
  frame.intra.push_back(WireIntraDelta{43, 30, 2});
  return frame;
}

TEST(ReportCodec, VarintZigzagRoundTrip) {
  const std::vector<uint64_t> values = {0, 1, 127, 128, 300, 1ULL << 20, 1ULL << 40,
                                        ~0ULL};
  std::vector<uint8_t> buf;
  for (const uint64_t v : values) {
    PutVarint(buf, v);
  }
  size_t pos = 0;
  for (const uint64_t v : values) {
    uint64_t got = 0;
    ASSERT_TRUE(GetVarint(buf, pos, got));
    EXPECT_EQ(got, v);
  }
  EXPECT_EQ(pos, buf.size());
  for (const int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1}, int64_t{-123456789},
                          int64_t{1} << 40}) {
    EXPECT_EQ(ZigzagDecode(ZigzagEncode(v)), v);
  }
}

TEST(ReportCodec, FrameRoundTrip) {
  const ReportFrame frame = SampleFrame();
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);
  ReportFrame decoded;
  ASSERT_EQ(ReportCodec::Decode(wire, decoded), DecodeStatus::kOk);
  EXPECT_EQ(decoded, frame);
  // Varint packing earns its keep even on this small frame.
  EXPECT_LT(wire.size(), ReportCodec::FixedWidthBytes(frame));
}

TEST(ReportCodec, EmptyFrameRoundTrip) {
  ReportFrame frame;
  frame.pinger = 0;
  frame.window_id = 0;
  frame.seq = 0;
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);
  ReportFrame decoded;
  ASSERT_EQ(ReportCodec::Decode(wire, decoded), DecodeStatus::kOk);
  EXPECT_EQ(decoded, frame);
}

TEST(ReportCodec, EveryTruncationIsAnError) {
  std::vector<uint8_t> wire;
  ReportCodec::Encode(SampleFrame(), wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    ReportFrame decoded;
    decoded.pinger = -7;  // sentinel: decode must not touch the output on error
    const DecodeStatus status =
        ReportCodec::Decode(std::span<const uint8_t>(wire.data(), len), decoded);
    EXPECT_NE(status, DecodeStatus::kOk) << "prefix of length " << len << " decoded";
    EXPECT_EQ(decoded.pinger, -7) << "output mutated on error at length " << len;
  }
}

TEST(ReportCodec, EverySingleByteCorruptionIsAnError) {
  std::vector<uint8_t> wire;
  ReportCodec::Encode(SampleFrame(), wire);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (const uint8_t flip : {uint8_t{0x01}, uint8_t{0x80}, uint8_t{0xFF}}) {
      std::vector<uint8_t> corrupted = wire;
      corrupted[i] ^= flip;
      ReportFrame decoded;
      EXPECT_NE(ReportCodec::Decode(corrupted, decoded), DecodeStatus::kOk)
          << "corruption at byte " << i << " xor " << int{flip} << " decoded";
    }
  }
}

// Flip one bit and recompute the trailing CRC so only the auth layer can catch the change —
// the forged-frame shape (a tamperer can always fix the checksum; only the keyed tag stops
// them).
std::vector<uint8_t> FlipWithCrcFixup(std::vector<uint8_t> bytes, size_t index, int bit) {
  bytes[index] ^= static_cast<uint8_t>(1u << bit);
  const size_t body = bytes.size() - 4;
  const uint32_t crc = Crc32({bytes.data(), body});
  for (size_t b = 0; b < 4; ++b) {
    bytes[body + b] = static_cast<uint8_t>(crc >> (8 * b));
  }
  return bytes;
}

// The structured fuzz over the authenticated frame layout: every single-bit flip across
// header, auth tag, payload, and CRC is rejected, and the *classification* is right — raw
// flips read as in-flight damage (kBadCrc; magic/version have their own earlier checks),
// CRC-fixed flips read as tamper (kBadAuth) everywhere the tag protects. The distinction is
// what the collector counts (decode_errors vs tampered_dropped), so it is load-bearing.
TEST(ReportCodec, EverySingleBitFlipIsRejectedAndClassified) {
  std::vector<uint8_t> wire;
  ReportCodec::Encode(SampleFrame(), wire);
  const size_t body = wire.size() - 4;
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      // Raw flip: random corruption. The CRC (or an earlier magic/version check) catches it.
      std::vector<uint8_t> corrupted = wire;
      corrupted[i] ^= static_cast<uint8_t>(1u << bit);
      ReportFrame decoded;
      decoded.pinger = -7;
      const DecodeStatus raw_status = ReportCodec::Decode(corrupted, decoded);
      EXPECT_NE(raw_status, DecodeStatus::kOk) << "bit " << bit << " of byte " << i;
      if (i >= 3) {
        EXPECT_EQ(raw_status, DecodeStatus::kBadCrc)
            << "raw flip at byte " << i << " bit " << bit << " misclassified as "
            << DecodeStatusName(raw_status);
      }
      EXPECT_EQ(decoded.pinger, -7) << "output mutated on error";

      // CRC-fixed flip: deliberate tamper. Skip the CRC bytes themselves (the fixup would
      // undo the flip) — magic/version keep their own statuses, everything else must land
      // kBadAuth: the tag covers tag-and-payload, and is verified before any parsing.
      if (i >= body) {
        continue;
      }
      const std::vector<uint8_t> forged = FlipWithCrcFixup(wire, i, bit);
      const DecodeStatus forged_status = ReportCodec::Decode(forged, decoded);
      if (i < 2) {
        EXPECT_EQ(forged_status, DecodeStatus::kBadMagic) << "byte " << i << " bit " << bit;
      } else if (i == 2) {
        EXPECT_EQ(forged_status, DecodeStatus::kBadVersion) << "bit " << bit;
      } else {
        EXPECT_EQ(forged_status, DecodeStatus::kBadAuth)
            << "forged bit " << bit << " of byte " << i << " classified as "
            << DecodeStatusName(forged_status);
      }
      EXPECT_EQ(decoded.pinger, -7) << "output mutated on tamper";
    }
  }
}

TEST(ReportCodec, WrongKeyIsBadAuth) {
  std::vector<uint8_t> wire;
  ReportCodec::Encode(SampleFrame(), wire, ReportKey{1, 2});
  ReportFrame decoded;
  EXPECT_EQ(ReportCodec::Decode(wire, decoded, ReportKey{1, 2}), DecodeStatus::kOk);
  EXPECT_EQ(ReportCodec::Decode(wire, decoded, ReportKey{1, 3}), DecodeStatus::kBadAuth);
  EXPECT_EQ(ReportCodec::Decode(wire, decoded), DecodeStatus::kBadAuth)
      << "default-key collector accepted a foreign deployment's frame";
}

TEST(ReportCodec, GarbageAndShortBuffersNeverCrash) {
  ReportFrame decoded;
  EXPECT_EQ(ReportCodec::Decode({}, decoded), DecodeStatus::kTooShort);
  const std::vector<uint8_t> noise(64, 0xAB);
  EXPECT_EQ(ReportCodec::Decode(noise, decoded), DecodeStatus::kBadMagic);
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<uint8_t> random(rng.NextBounded(64));
    for (auto& byte : random) {
      byte = static_cast<uint8_t>(rng());
    }
    EXPECT_NE(ReportCodec::Decode(random, decoded), DecodeStatus::kOk);
  }
}

// Fold `frames` (in the given order) through a collector into a fresh store and return the
// resulting totals over `num_slots`.
Observations FoldedTotals(const std::vector<std::vector<uint8_t>>& frames, size_t num_slots,
                          const Watchdog& watchdog, CollectorStats* stats = nullptr) {
  ObservationStore store;
  store.EnsureSlots(num_slots);
  Collector collector(store);
  collector.BeginWindow(1);
  for (const auto& frame : frames) {
    collector.Offer(frame);
  }
  collector.Drain();
  if (stats != nullptr) {
    *stats = collector.stats();
  }
  const ObservationView view = store.RunningTotals(num_slots, watchdog);
  return Observations(view.begin(), view.end());
}

TEST(Collector, DuplicateAndReorderedDeliveryIsIdempotent) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  // Two pingers, two frames each, all in window 1.
  std::vector<std::vector<uint8_t>> frames;
  for (NodeId pinger : {ft.Server(0, 0, 0), ft.Server(1, 0, 0)}) {
    for (uint64_t seq = 0; seq < 2; ++seq) {
      ReportFrame frame;
      frame.pinger = pinger;
      frame.window_id = 1;
      frame.seq = seq;
      frame.paths.push_back(
          WirePathDelta{static_cast<PathId>(seq), 0, ft.Server(1, 1, 0), 100, 10});
      frame.paths.push_back(WirePathDelta{3, 0, ft.Server(1, 1, 1), 50, 0});
      frames.push_back({});
      ReportCodec::Encode(frame, frames.back());
    }
  }
  const Observations once = FoldedTotals(frames, 4, wd);

  // Every frame delivered three times, interleaved and reversed: totals must not move.
  std::vector<std::vector<uint8_t>> noisy;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    noisy.push_back(*it);
  }
  noisy.insert(noisy.end(), frames.begin(), frames.end());
  noisy.insert(noisy.end(), frames.rbegin(), frames.rend());
  CollectorStats stats;
  const Observations replayed = FoldedTotals(noisy, 4, wd, &stats);
  EXPECT_EQ(stats.frames_folded, frames.size());
  EXPECT_EQ(stats.duplicates_dropped, 2 * frames.size());
  ASSERT_EQ(replayed.size(), once.size());
  for (size_t slot = 0; slot < once.size(); ++slot) {
    EXPECT_EQ(replayed[slot].sent, once[slot].sent) << "slot " << slot;
    EXPECT_EQ(replayed[slot].lost, once[slot].lost) << "slot " << slot;
  }
}

TEST(Collector, CorruptFramesFoldNothing) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  ReportFrame frame;
  frame.pinger = ft.Server(0, 0, 0);
  frame.window_id = 1;
  frame.seq = 0;
  frame.paths.push_back(WirePathDelta{0, 0, ft.Server(1, 0, 0), 100, 10});
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);

  std::vector<std::vector<uint8_t>> corrupted;
  for (size_t i = 0; i < wire.size(); ++i) {
    corrupted.push_back(wire);
    corrupted.back()[i] ^= 0x40;
  }
  CollectorStats stats;
  const Observations totals = FoldedTotals(corrupted, 2, wd, &stats);
  EXPECT_EQ(stats.frames_folded, 0u);
  EXPECT_EQ(stats.decode_errors, corrupted.size());
  for (const PathObservation& obs : totals) {
    EXPECT_EQ(obs.sent, 0);
    EXPECT_EQ(obs.lost, 0);
  }
}

TEST(Collector, StaleWindowAndOverflowDropCleanly) {
  ObservationStore store;
  store.EnsureSlots(2);
  Collector collector(store, CollectorOptions{.queue_capacity = 2});
  collector.BeginWindow(5);

  ReportFrame stale;
  stale.pinger = 1;
  stale.window_id = 4;  // older than the open window
  stale.seq = 0;
  stale.paths.push_back(WirePathDelta{0, 0, 2, 10, 1});
  std::vector<uint8_t> wire;
  ReportCodec::Encode(stale, wire);
  ASSERT_TRUE(collector.Offer(wire));
  EXPECT_EQ(collector.Drain(), 0u);
  EXPECT_EQ(collector.stats().stale_window_dropped, 1u);

  // Queue holds 2; the third Offer before a drain is dropped and counted.
  EXPECT_TRUE(collector.Offer(wire));
  EXPECT_TRUE(collector.Offer(wire));
  EXPECT_FALSE(collector.Offer(wire));
  EXPECT_EQ(collector.stats().queue_overflow_dropped, 1u);
}

TEST(Collector, PumpDrainsInsteadOfDroppingWhenQueueFills) {
  // The pump owns both queue sides, so a backlog larger than the bounded queue drains early
  // instead of dropping — a lossless transport must stay lossless through PumpFrom even with
  // a tiny queue. (External producers racing a stalled drain still hit the Offer bound.)
  ObservationStore store;
  store.EnsureSlots(1);
  Collector collector(store, CollectorOptions{.queue_capacity = 4});
  collector.BeginWindow(1);
  LoopbackTransport transport;
  std::vector<uint8_t> wire;
  for (uint64_t seq = 0; seq < 64; ++seq) {
    ReportFrame frame;
    frame.pinger = 1;
    frame.window_id = 1;
    frame.seq = seq;
    frame.paths.push_back(WirePathDelta{0, 0, 2, 10, 1});
    ReportCodec::Encode(frame, wire);
    transport.Send(wire);
  }
  EXPECT_EQ(collector.PumpFrom(transport), 64u);
  EXPECT_EQ(collector.stats().queue_overflow_dropped, 0u);
  const Topology empty_topo("x");
  Watchdog wd(empty_topo);
  const ObservationView totals = store.RunningTotals(1, wd);
  EXPECT_EQ(totals[0].sent, 640);
  EXPECT_EQ(totals[0].lost, 64);
}

TEST(Collector, WireEpochStampsOrphanLikeDirectWrites) {
  // A frame carrying an old epoch (probe happened before a mid-window invalidation, delivery
  // after) must fold to nothing, exactly like a direct record written before the bump.
  ObservationStore store;
  store.EnsureSlots(2);
  const Topology empty_topo("empty");
  Watchdog wd(empty_topo);
  Collector collector(store);
  collector.BeginWindow(1);

  ReportFrame frame;
  frame.pinger = 1;
  frame.window_id = 1;
  frame.seq = 0;
  frame.paths.push_back(WirePathDelta{0, /*epoch=*/0, 2, 100, 10});
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);

  const std::vector<PathId> vacated = {0};
  store.InvalidateSlots(vacated);  // epoch 0 -> 1 before the frame arrives
  collector.Offer(wire);
  collector.Drain();
  const ObservationView totals = store.RunningTotals(2, wd);
  EXPECT_EQ(totals[0].sent, 0);
  EXPECT_EQ(totals[0].lost, 0);
}

TEST(LoopbackTransport, DeterministicDropAndReorder) {
  LoopbackOptions options;
  options.drop_rate = 0.3;
  options.reorder_rate = 0.5;
  options.seed = 17;
  auto run = [&] {
    LoopbackTransport transport(options);
    for (uint8_t i = 0; i < 50; ++i) {
      const uint8_t frame[2] = {i, uint8_t(i ^ 0xFF)};
      transport.Send(frame);
    }
    std::vector<std::vector<uint8_t>> delivered;
    std::vector<uint8_t> out;
    while (transport.Receive(out)) {
      delivered.push_back(out);
    }
    return delivered;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b) << "same seed and send order must deliver identically";
  EXPECT_LT(a.size(), 50u) << "drop injection delivered everything";
  EXPECT_GT(a.size(), 10u);
}

DetectorSystemOptions ReportTestOptions(double pps) {
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = pps;
  options.segments_per_window = 6;
  options.diagnose_every_segments = 2;
  return options;
}

std::vector<ChurnEvent> MidWindowChurn(const FatTree& ft) {
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{8.0, TopologyDelta::LinkDown(ft.AggCoreLink(1, 0, 1))});
  churn.push_back(ChurnEvent{14.0, TopologyDelta::NodeDown(ft.Server(2, 0, 1))});
  churn.push_back(ChurnEvent{23.0, TopologyDelta::LinkUp(ft.AggCoreLink(1, 0, 1))});
  return churn;
}

// The acceptance gate: under the lossless in-process loopback, report-plane streaming windows
// are bit-identical to direct-mode windows — totals, verdicts, alarms, traffic — at 1, 2 and
// 8 probe threads, including mid-window churn (slot invalidation + reuse under live frames).
TEST(ReportPlane, BitIdenticalToDirectModeAt1_2_8Threads) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 1, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.08;
  scenario.failures.push_back(f);
  const std::vector<ChurnEvent> churn = MidWindowChurn(ft);

  for (const size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    auto run = [&](bool report_plane) {
      DetectorSystemOptions options = ReportTestOptions(150);
      options.probe_threads = threads;
      options.report_plane = report_plane;
      DetectorSystem system(routing, options);
      Rng rng(99);
      std::vector<DetectorSystem::StreamingWindowResult> out;
      out.push_back(system.RunWindowStreaming(scenario, churn, rng));
      out.push_back(system.RunWindowStreaming(scenario, {}, rng));
      if (report_plane) {
        // Sanity: the window actually rode the wire.
        EXPECT_NE(system.collector(), nullptr);
        if (system.collector() != nullptr) {
          EXPECT_GT(system.collector()->stats().frames_folded, 0u);
          EXPECT_EQ(system.collector()->stats().decode_errors, 0u);
          EXPECT_EQ(system.collector()->stats().duplicates_dropped, 0u);
        }
      }
      return out;
    };
    const auto direct = run(false);
    const auto report = run(true);
    ASSERT_EQ(direct.size(), report.size());
    for (size_t w = 0; w < direct.size(); ++w) {
      const std::string when =
          "threads=" + std::to_string(threads) + " window=" + std::to_string(w);
      ExpectIdenticalWindows(direct[w].window, report[w].window, when);
      ASSERT_EQ(direct[w].timeline.size(), report[w].timeline.size()) << when;
      for (size_t i = 0; i < direct[w].timeline.size(); ++i) {
        ExpectIdenticalLocalizations(direct[w].timeline[i].localization,
                                     report[w].timeline[i].localization,
                                     when + " boundary " + std::to_string(i));
        EXPECT_EQ(direct[w].timeline[i].server_link_alarms,
                  report[w].timeline[i].server_link_alarms)
            << when << " boundary " << i;
      }
    }
  }
}

// With injected drop and reorder the collector must degrade, never corrupt: every folded
// counter is a real observation (per-slot totals bounded by the lossless run), no decode
// errors or duplicate folds appear, and diagnosis still runs.
TEST(ReportPlane, InjectedDropReorderNeverCorruptsTotals) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  auto run = [&](double drop, double reorder) {
    DetectorSystemOptions options = ReportTestOptions(120);
    options.probe_threads = 1;  // deterministic send order for the faulty-channel run
    options.report_plane = true;
    DetectorSystem system(routing, options);
    LoopbackOptions loopback;
    loopback.drop_rate = drop;
    loopback.reorder_rate = reorder;
    loopback.seed = 23;
    system.SetReportTransport(std::make_unique<LoopbackTransport>(loopback));
    Rng rng(5);
    // Diagnose consumes the store at window end, so compare totals before it: run the
    // window's probing via streaming segments, then read the diagnoser's aggregate.
    const auto result = system.RunWindowStreaming(scenario, {}, rng);
    CollectorStats stats = system.collector()->stats();
    return std::make_pair(result, stats);
  };

  const auto [lossless, lossless_stats] = run(0.0, 0.0);
  const auto [faulty, faulty_stats] = run(0.25, 0.5);

  EXPECT_EQ(faulty_stats.decode_errors, 0u) << "reorder/drop must not corrupt frames";
  EXPECT_EQ(faulty_stats.duplicates_dropped, 0u);
  EXPECT_LT(faulty_stats.frames_folded, lossless_stats.frames_folded)
      << "drop injection folded everything — the fault path did not run";
  // Probing is transport-independent; only aggregation degrades.
  EXPECT_EQ(faulty.window.probes_sent, lossless.window.probes_sent);
  // A full-loss core failure survives 25% report loss: plenty of replicas still arrive.
  bool found = false;
  for (const SuspectLink& s : faulty.window.localization.links) {
    found |= s.link == f.link;
  }
  EXPECT_TRUE(found) << "failure lost in the report plane";
}

TEST(ReportPlane, UdpLoopbackDeliversFrames) {
  std::string error;
  auto collector_side = UdpTransport::Bind(0, &error);
  if (collector_side == nullptr) {
    GTEST_SKIP() << "UDP sockets unavailable in this sandbox (" << error
                 << ") — skipping the UDP loopback test";
  }
  auto agent_side = UdpTransport::Connect(collector_side->port(), &error);
  if (agent_side == nullptr) {
    // Some sandboxes allow bind but refuse connect — surface the factory's reason in the
    // CI log instead of failing a test the environment cannot run.
    GTEST_SKIP() << "UDP connect unavailable in this sandbox (" << error
                 << ") — skipping the UDP loopback test";
  }

  ObservationStore store;
  store.EnsureSlots(8);
  Collector collector(store);
  collector.BeginWindow(1);

  // An emitter batching 3 observations per frame: 7 records -> 3 frames over real UDP.
  ReportEmitter emitter(/*pinger=*/9, /*window_id=*/1, /*start_seq=*/0, store.slot_epochs(),
                        *agent_side, /*batch_observations=*/3);
  for (PathId slot = 0; slot < 7; ++slot) {
    emitter.OnPath(slot, /*target=*/slot + 100, /*sent=*/10 * (slot + 1), /*lost=*/slot);
  }
  emitter.Flush();
  EXPECT_EQ(emitter.stats().frames_emitted, 3u);

  // Localhost UDP is reliable enough in practice, but poll with a deadline regardless.
  size_t folded = 0;
  for (int attempt = 0; attempt < 100 && folded < 3; ++attempt) {
    std::vector<uint8_t> frame;
    if (collector_side->ReceiveTimeout(frame, 50)) {
      collector.Offer(std::move(frame));
      folded += collector.Drain();
    }
  }
  ASSERT_EQ(folded, 3u) << "UDP frames did not arrive within the deadline";
  const Topology empty_topo("none");
  Watchdog wd(empty_topo);
  const ObservationView totals = store.RunningTotals(8, wd);
  for (PathId slot = 0; slot < 7; ++slot) {
    EXPECT_EQ(totals[static_cast<size_t>(slot)].sent, 10 * (slot + 1)) << "slot " << slot;
    EXPECT_EQ(totals[static_cast<size_t>(slot)].lost, slot) << "slot " << slot;
  }
}

}  // namespace
}  // namespace detector
