// PMC algorithm tests: coverage and identifiability of the produced matrices, decomposition
// behavior per topology family (Observation 1), lazy-vs-strawman consistency (Observation 2),
// evenness, and scale guards.
#include <gtest/gtest.h>

#include "src/pmc/decomposition.h"
#include "src/pmc/identifiability.h"
#include "src/pmc/pmc.h"
#include "src/routing/bcube_routing.h"
#include "src/routing/fattree_routing.h"
#include "src/routing/vl2_routing.h"

namespace detector {
namespace {

TEST(Decomposition, FatTreeSplitsIntoCoreGroups) {
  // Every via-core path keeps the same aggregation index at both ends, so the bipartite
  // path-link graph splits into exactly k/2 components — the paper's Observation 1.
  for (int k : {4, 6, 8}) {
    const FatTree ft(k);
    const FatTreeRouting routing(ft);
    const PathStore candidates = routing.Enumerate(PathEnumMode::kFull);
    const LinkIndex links = LinkIndex::ForMonitored(ft.topology());
    const Decomposition decomp = DecomposePathLinkGraph(candidates, links);
    EXPECT_EQ(decomp.components.size(), static_cast<size_t>(k / 2)) << "k=" << k;
    EXPECT_TRUE(decomp.uncoverable_links.empty());
    // Components partition both paths and links.
    size_t total_paths = 0;
    size_t total_links = 0;
    for (const auto& comp : decomp.components) {
      total_paths += comp.path_ids.size();
      total_links += comp.dense_links.size();
    }
    EXPECT_EQ(total_paths, candidates.size());
    EXPECT_EQ(total_links, static_cast<size_t>(links.num_links()));
  }
}

TEST(Decomposition, Vl2AndBcubeDoNotDecompose) {
  // Matches the paper's Table 2 observation that decomposition does not apply to VL2/BCube.
  {
    const Vl2 vl2(8, 4, 2);
    const Vl2Routing routing(vl2);
    const PathStore candidates = routing.Enumerate(PathEnumMode::kFull);
    const Decomposition decomp =
        DecomposePathLinkGraph(candidates, LinkIndex::ForMonitored(vl2.topology()));
    EXPECT_EQ(decomp.components.size(), 1u);
  }
  {
    const Bcube bc(4, 1);
    const BcubeRouting routing(bc);
    const PathStore candidates = routing.Enumerate(PathEnumMode::kFull);
    const Decomposition decomp =
        DecomposePathLinkGraph(candidates, LinkIndex::ForMonitored(bc.topology()));
    EXPECT_EQ(decomp.components.size(), 1u);
  }
}

TEST(Decomposition, UncoverableLinksDetected) {
  const FatTree ft(4);
  PathStore candidates;  // empty: nothing covers anything
  const Decomposition decomp =
      DecomposePathLinkGraph(candidates, LinkIndex::ForMonitored(ft.topology()));
  EXPECT_TRUE(decomp.components.empty());
  EXPECT_EQ(decomp.uncoverable_links.size(), ft.topology().NumMonitoredLinks());
}

struct PmcConfigCase {
  int alpha;
  int beta;
};

class PmcOnFatTree : public ::testing::TestWithParam<PmcConfigCase> {};

TEST_P(PmcOnFatTree, AchievesCoverageAndIdentifiability) {
  const auto [alpha, beta] = GetParam();
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = alpha;
  options.beta = beta;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);
  EXPECT_TRUE(result.stats.alpha_satisfied);
  const auto coverage = result.matrix.Coverage();
  EXPECT_GE(coverage.min, alpha);
  if (beta >= 1) {
    const auto report = VerifyIdentifiability(result.matrix, beta);
    EXPECT_TRUE(report.covered);
    EXPECT_GE(report.achieved_beta, beta) << report.counterexample;
  }
  // Far fewer paths than the full universe.
  EXPECT_LT(result.stats.num_selected, result.stats.num_candidates / 4);
}

INSTANTIATE_TEST_SUITE_P(Configs, PmcOnFatTree,
                         ::testing::Values(PmcConfigCase{1, 0}, PmcConfigCase{2, 0},
                                           PmcConfigCase{1, 1}, PmcConfigCase{2, 1},
                                           PmcConfigCase{3, 2}),
                         [](const auto& info) {
                           return "a" + std::to_string(info.param.alpha) + "b" +
                                  std::to_string(info.param.beta);
                         });

TEST(Pmc, Vl2Identifiable) {
  const Vl2 vl2(8, 4, 2);
  const Vl2Routing routing(vl2);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 1;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);
  EXPECT_TRUE(result.stats.alpha_satisfied);
  const auto report = VerifyIdentifiability(result.matrix, 1);
  EXPECT_GE(report.achieved_beta, 1) << report.counterexample;
}

TEST(Pmc, BcubeIdentifiable) {
  const Bcube bc(4, 1);
  const BcubeRouting routing(bc);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 1;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);
  EXPECT_TRUE(result.stats.alpha_satisfied);
  const auto report = VerifyIdentifiability(result.matrix, 1);
  EXPECT_GE(report.achieved_beta, 1) << report.counterexample;
}

TEST(Pmc, StrawmanAndLazyAgreeOnQuality) {
  // The lazy update (Observation 2) is a heuristic; its result must still meet the same
  // coverage/identifiability targets and stay within a small factor in path count.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions lazy;
  lazy.alpha = 2;
  lazy.beta = 1;
  lazy.lazy = true;
  PmcOptions strawman = lazy;
  strawman.lazy = false;
  strawman.decompose = false;
  const PmcResult lr = BuildProbeMatrix(routing, PathEnumMode::kFull, lazy);
  const PmcResult sr = BuildProbeMatrix(routing, PathEnumMode::kFull, strawman);
  EXPECT_TRUE(lr.stats.alpha_satisfied);
  EXPECT_TRUE(sr.stats.alpha_satisfied);
  EXPECT_LE(lr.stats.num_selected, sr.stats.num_selected * 2);
  EXPECT_LE(sr.stats.num_selected, lr.stats.num_selected * 2);
  EXPECT_GE(VerifyIdentifiability(lr.matrix, 1).achieved_beta, 1);
  EXPECT_GE(VerifyIdentifiability(sr.matrix, 1).achieved_beta, 1);
}

TEST(Pmc, DecompositionDoesNotChangeQuality) {
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  PmcOptions with;
  with.alpha = 1;
  with.beta = 1;
  with.decompose = true;
  PmcOptions without = with;
  without.decompose = false;
  const PmcResult a = BuildProbeMatrix(routing, PathEnumMode::kFull, with);
  const PmcResult b = BuildProbeMatrix(routing, PathEnumMode::kFull, without);
  EXPECT_EQ(a.stats.num_components, 3);
  EXPECT_EQ(b.stats.num_components, 1);
  EXPECT_GE(VerifyIdentifiability(a.matrix, 1).achieved_beta, 1);
  EXPECT_GE(VerifyIdentifiability(b.matrix, 1).achieved_beta, 1);
}

TEST(Pmc, ParallelComponentsMatchSerial) {
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  PmcOptions serial;
  serial.alpha = 1;
  serial.beta = 1;
  PmcOptions parallel = serial;
  parallel.num_threads = 3;
  const PmcResult a = BuildProbeMatrix(routing, PathEnumMode::kFull, serial);
  const PmcResult b = BuildProbeMatrix(routing, PathEnumMode::kFull, parallel);
  // Same candidates, same deterministic per-component greedy => identical selections.
  EXPECT_EQ(a.stats.num_selected, b.stats.num_selected);
}

TEST(Pmc, SymmetryReducedCandidatesStillWork) {
  const FatTree ft(8);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 2;
  options.beta = 1;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kSymmetryReduced, options);
  EXPECT_TRUE(result.stats.alpha_satisfied);
  EXPECT_GE(result.matrix.Coverage().min, 2);
  const auto report = VerifyIdentifiability(result.matrix, 1);
  EXPECT_GE(report.achieved_beta, 1) << report.counterexample;
}

TEST(Pmc, EvennessTermKeepsCoverageGapModest) {
  // The w[link] term in the score spreads probes: max coverage should stay within a small
  // factor of alpha rather than piling onto a few links.
  const FatTree ft(8);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 3;
  options.beta = 0;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);
  const auto coverage = result.matrix.Coverage();
  EXPECT_GE(coverage.min, 3);
  EXPECT_LE(coverage.max, 3 * 4);
}

TEST(Pmc, TimeLimitReportsTimeout) {
  const FatTree ft(8);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 2;
  options.lazy = false;
  options.decompose = false;
  options.time_limit_seconds = 1e-4;  // absurdly small: must trip immediately
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);
  EXPECT_TRUE(result.stats.timed_out);
}

TEST(Pmc, ExtendedStateGuardThrows) {
  const FatTree ft(8);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 3;
  options.decompose = false;
  options.max_extended_links = 1000;  // far below C(256,3)
  EXPECT_THROW(BuildProbeMatrix(routing, PathEnumMode::kFull, options), std::runtime_error);
}

TEST(Pmc, AlphaZeroBetaZeroSelectsNothing) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 0;
  options.beta = 0;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);
  EXPECT_EQ(result.stats.num_selected, 0u);
}

TEST(ProbeMatrix, LinkToPathIndexConsistent) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 1;
  const PmcResult result = BuildProbeMatrix(routing, PathEnumMode::kFull, options);
  const ProbeMatrix& m = result.matrix;
  // Cross-check CSR against per-path link lists.
  std::vector<int> expected(static_cast<size_t>(m.NumLinks()), 0);
  for (size_t p = 0; p < m.NumPaths(); ++p) {
    for (int32_t d : m.DenseLinksOfPath(static_cast<PathId>(p))) {
      ++expected[static_cast<size_t>(d)];
    }
  }
  for (int32_t d = 0; d < m.NumLinks(); ++d) {
    EXPECT_EQ(m.PathsThroughDense(d).size(), static_cast<size_t>(expected[static_cast<size_t>(d)]));
    for (PathId p : m.PathsThroughDense(d)) {
      const auto dense = m.DenseLinksOfPath(p);
      EXPECT_NE(std::find(dense.begin(), dense.end(), d), dense.end());
    }
  }
}

TEST(LinkIndex, MonitoredOnlyMapping) {
  const FatTree ft(4);
  const LinkIndex index = LinkIndex::ForMonitored(ft.topology());
  EXPECT_EQ(static_cast<size_t>(index.num_links()), ft.topology().NumMonitoredLinks());
  for (int32_t d = 0; d < index.num_links(); ++d) {
    const LinkId link = index.Link(d);
    EXPECT_TRUE(ft.topology().link(link).monitored);
    EXPECT_EQ(index.Dense(link), d);
  }
  EXPECT_EQ(index.Dense(ft.ServerLink(0, 0, 0)), -1);
}

}  // namespace
}  // namespace detector
