// Tests for the structured fat-tree generator: exact per-family cover, path counts (k^3/8 per
// family, matching the paper's Table 3 granularity), and the identifiability the default family
// sequences achieve at small k (the basis for trusting the construction at k = 32/48/64).
#include <gtest/gtest.h>

#include "src/pmc/identifiability.h"
#include "src/pmc/structured_fattree.h"

namespace detector {
namespace {

TEST(Structured, OneFamilyIsPerfectCover) {
  for (int k : {4, 6, 8, 12}) {
    const FatTree ft(k);
    const std::vector<StructuredFamily> fams{{1, 0, 0}};
    PathStore paths = StructuredFatTreePaths(ft, fams);
    EXPECT_EQ(paths.size(), static_cast<size_t>(k) * k * k / 8) << "k=" << k;
    ProbeMatrix matrix(std::move(paths), LinkIndex::ForMonitored(ft.topology()));
    const auto cov = matrix.Coverage();
    EXPECT_EQ(cov.min, 1) << "k=" << k;
    EXPECT_EQ(cov.max, 1) << "k=" << k;  // perfect 1-cover: perfectly even
  }
}

TEST(Structured, FamiliesStackCoverage) {
  const FatTree ft(8);
  for (int fams = 1; fams <= 4; ++fams) {
    std::vector<StructuredFamily> pool = DefaultStructuredFamilies(9, 0);
    pool.resize(static_cast<size_t>(fams));
    PathStore paths = StructuredFatTreePaths(ft, pool);
    ProbeMatrix matrix(std::move(paths), LinkIndex::ForMonitored(ft.topology()));
    const auto cov = matrix.Coverage();
    EXPECT_EQ(cov.min, fams);
    EXPECT_EQ(cov.max, fams);
  }
}

TEST(Structured, DefaultFamiliesAchieveBetaOne) {
  for (int k : {4, 6, 8}) {
    const FatTree ft(k);
    ProbeMatrix matrix = StructuredFatTreeProbeMatrix(ft, /*alpha=*/1, /*beta=*/1);
    const auto report = VerifyIdentifiability(matrix, 1);
    EXPECT_TRUE(report.covered);
    EXPECT_GE(report.achieved_beta, 1) << "k=" << k << ": " << report.counterexample;
  }
}

TEST(Structured, DefaultFamiliesAchieveBetaTwoForKAtLeastSix) {
  for (int k : {6, 8, 10}) {
    const FatTree ft(k);
    ProbeMatrix matrix = StructuredFatTreeProbeMatrix(ft, /*alpha=*/1, /*beta=*/2);
    const auto report = VerifyIdentifiability(matrix, 2, 3'000'000);
    EXPECT_GE(report.achieved_beta, 2) << "k=" << k << ": " << report.counterexample;
  }
}

TEST(Structured, FourAryCannotBeTwoIdentifiable) {
  // §6.3: "it is impossible to achieve 2-identifiability in a 4-ary Fattree". Even stacking
  // many families must cap at beta = 1.
  const FatTree ft(4);
  std::vector<StructuredFamily> pool = DefaultStructuredFamilies(9, 0);
  PathStore paths = StructuredFatTreePaths(ft, pool);
  ProbeMatrix matrix(std::move(paths), LinkIndex::ForMonitored(ft.topology()));
  const auto report = VerifyIdentifiability(matrix, 2);
  EXPECT_EQ(report.achieved_beta, 1);
}

TEST(Structured, BetaThreeAtKEight) {
  const FatTree ft(8);
  ProbeMatrix matrix = StructuredFatTreeProbeMatrix(ft, /*alpha=*/1, /*beta=*/3);
  const auto report = VerifyIdentifiability(matrix, 3, 2'000'000);
  EXPECT_GE(report.achieved_beta, 3) << report.counterexample;
}

TEST(Structured, AlphaDrivesFamilyCount) {
  const FatTree ft(6);
  ProbeMatrix matrix = StructuredFatTreeProbeMatrix(ft, /*alpha=*/4, /*beta=*/0);
  const auto cov = matrix.Coverage();
  EXPECT_GE(cov.min, 4);
}

TEST(Structured, PathCountsMatchPaperTable3Shape) {
  // Paper Table 3, Fattree(32): (1,0) -> 4096 = k^3/8; (3,2) -> 12288 = 3k^3/8. Our defaults
  // emit exactly those counts (the (1,1) sequence uses 3 families vs the paper's 1.875
  // greedy-found equivalent; same k^3 scaling).
  const FatTree ft(32);
  {
    PathStore p = StructuredFatTreePaths(ft, DefaultStructuredFamilies(1, 0));
    EXPECT_EQ(p.size(), 4096u);
  }
  {
    PathStore p = StructuredFatTreePaths(ft, DefaultStructuredFamilies(3, 2));
    EXPECT_EQ(p.size(), 12288u);
  }
}

TEST(Structured, EvenRotationIsNormalizedToOdd) {
  // rotation=2 would pair even pods with even pods (not a perfect matching); the generator
  // must normalize it while keeping the family a perfect cover.
  const FatTree ft(6);
  const std::vector<StructuredFamily> fams{{2, 0, 0}};
  PathStore paths = StructuredFatTreePaths(ft, fams);
  ProbeMatrix matrix(std::move(paths), LinkIndex::ForMonitored(ft.topology()));
  EXPECT_EQ(matrix.Coverage().min, 1);
}

TEST(Structured, PathsAreValidTorToTor) {
  const FatTree ft(8);
  PathStore paths = StructuredFatTreePaths(ft, DefaultStructuredFamilies(1, 1));
  const Topology& topo = ft.topology();
  for (size_t p = 0; p < paths.size(); ++p) {
    const auto links = paths.Links(static_cast<PathId>(p));
    ASSERT_EQ(links.size(), 4u);
    const NodeId src = paths.src(static_cast<PathId>(p));
    const NodeId dst = paths.dst(static_cast<PathId>(p));
    EXPECT_EQ(topo.node(src).kind, NodeKind::kTor);
    EXPECT_EQ(topo.node(dst).kind, NodeKind::kTor);
    // Source and destination pods differ (inter-pod families only).
    EXPECT_NE(topo.node(src).pod, topo.node(dst).pod);
  }
}

}  // namespace
}  // namespace detector
