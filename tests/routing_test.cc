// Path-enumeration tests: closed-form universe sizes (matching the paper's Table 2 "# of
// original paths" exactly), path validity, symmetry-reduced candidate properties, and ECMP.
#include <gtest/gtest.h>

#include <set>

#include "src/routing/bcube_routing.h"
#include "src/routing/ecmp.h"
#include "src/routing/fattree_routing.h"
#include "src/routing/path_store.h"
#include "src/routing/vl2_routing.h"

namespace detector {
namespace {

TEST(PathStore, AddAndRetrieve) {
  PathStore store;
  const std::vector<LinkId> l1{1, 2, 3};
  const std::vector<LinkId> l2{4, 5};
  const PathId p1 = store.Add(10, 20, l1);
  const PathId p2 = store.Add(30, 40, l2);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.src(p1), 10);
  EXPECT_EQ(store.dst(p2), 40);
  EXPECT_EQ(store.PathLength(p1), 3u);
  EXPECT_EQ(std::vector<LinkId>(store.Links(p2).begin(), store.Links(p2).end()), l2);
  EXPECT_EQ(store.TotalLinkEntries(), 5u);
}

TEST(PathStore, AppendFromCopiesSubset) {
  PathStore a;
  a.Add(1, 2, std::vector<LinkId>{7});
  a.Add(3, 4, std::vector<LinkId>{8, 9});
  PathStore b;
  const std::vector<PathId> ids{1};
  b.AppendFrom(a, ids);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b.src(0), 3);
  EXPECT_EQ(b.PathLength(0), 2u);
}

// Walks a path's links and verifies they form a connected ToR-to-ToR via-core walk (allowing
// the intra-pod core bounce, where the agg-core link appears once but is traversed twice).
void ExpectValidFatTreePath(const FatTree& ft, std::span<const LinkId> links, NodeId src,
                            NodeId dst) {
  const Topology& topo = ft.topology();
  ASSERT_GE(links.size(), 3u);
  ASSERT_LE(links.size(), 4u);
  // First link touches src ToR; last touches dst ToR.
  const Link& first = topo.link(links[0]);
  EXPECT_TRUE(first.a == src || first.b == src);
  const Link& last = topo.link(links[links.size() - 1]);
  EXPECT_TRUE(last.a == dst || last.b == dst);
  // Consecutive links share a node.
  for (size_t i = 0; i + 1 < links.size(); ++i) {
    const Link& x = topo.link(links[i]);
    const Link& y = topo.link(links[i + 1]);
    const bool share = x.a == y.a || x.a == y.b || x.b == y.a || x.b == y.b;
    EXPECT_TRUE(share) << "links " << links[i] << " and " << links[i + 1] << " do not touch";
  }
}

struct FatTreePathCase {
  int k;
  uint64_t expected;  // paper Table 2 "# of original paths"
};

class FatTreePathCounts : public ::testing::TestWithParam<FatTreePathCase> {};

TEST_P(FatTreePathCounts, ClosedFormMatchesPaper) {
  const FatTree ft(GetParam().k);
  const FatTreeRouting routing(ft);
  EXPECT_EQ(routing.TotalPathCount(), GetParam().expected);
}

// 184,032 and 11,902,464 are the paper's Fattree(12) / Fattree(24) rows; Fattree(72)'s
// 8,703,770,112 is checked purely in closed form.
INSTANTIATE_TEST_SUITE_P(PaperSizes, FatTreePathCounts,
                         ::testing::Values(FatTreePathCase{4, 224},
                                           FatTreePathCase{12, 184032},
                                           FatTreePathCase{24, 11902464},
                                           FatTreePathCase{72, 8703770112ULL}),
                         [](const auto& info) {
                           return "k" + std::to_string(info.param.k);
                         });

TEST(FatTreeRouting, FullEnumerationMatchesClosedForm) {
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  const PathStore paths = routing.Enumerate(PathEnumMode::kFull);
  EXPECT_EQ(paths.size(), routing.TotalPathCount());
  for (size_t p = 0; p < paths.size(); ++p) {
    ExpectValidFatTreePath(ft, paths.Links(static_cast<PathId>(p)),
                           paths.src(static_cast<PathId>(p)), paths.dst(static_cast<PathId>(p)));
  }
}

TEST(FatTreeRouting, IntraPodPathsHaveThreeLinks) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  std::vector<LinkId> links;
  routing.CorePath({0, 0}, {0, 1}, 1, 1, links);
  EXPECT_EQ(links.size(), 3u);
  EXPECT_EQ(links[0], ft.EdgeAggLink(0, 0, 1));
  EXPECT_EQ(links[1], ft.AggCoreLink(0, 1, 1));
  EXPECT_EQ(links[2], ft.EdgeAggLink(0, 1, 1));
}

TEST(FatTreeRouting, InterPodPathsHaveFourLinks) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  std::vector<LinkId> links;
  routing.CorePath({0, 0}, {2, 1}, 0, 1, links);
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[1], ft.AggCoreLink(0, 0, 1));
  EXPECT_EQ(links[2], ft.AggCoreLink(2, 0, 1));
}

TEST(FatTreeRouting, ParallelPathsCountAndDistinct) {
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  const PathStore paths = routing.ParallelPaths(ft.Tor(0, 0), ft.Tor(3, 2));
  EXPECT_EQ(paths.size(), 9u);  // (k/2)^2
  std::set<std::vector<LinkId>> distinct;
  for (size_t p = 0; p < paths.size(); ++p) {
    const auto l = paths.Links(static_cast<PathId>(p));
    distinct.emplace(l.begin(), l.end());
  }
  EXPECT_EQ(distinct.size(), 9u);
}

TEST(FatTreeRouting, ReducedEnumerationCoversEveryMonitoredLink) {
  const FatTree ft(8);
  const FatTreeRouting routing(ft);
  const PathStore paths = routing.Enumerate(PathEnumMode::kSymmetryReduced);
  // k=8 is near the break-even point; the reduction factor grows as k^3 beyond it.
  EXPECT_LT(paths.size(), routing.TotalPathCount() / 3);
  std::vector<int> coverage(ft.topology().NumLinks(), 0);
  for (size_t p = 0; p < paths.size(); ++p) {
    for (LinkId l : paths.Links(static_cast<PathId>(p))) {
      ++coverage[static_cast<size_t>(l)];
    }
    ExpectValidFatTreePath(ft, paths.Links(static_cast<PathId>(p)),
                           paths.src(static_cast<PathId>(p)), paths.dst(static_cast<PathId>(p)));
  }
  for (size_t l = 0; l < coverage.size(); ++l) {
    if (ft.topology().link(static_cast<LinkId>(l)).monitored) {
      EXPECT_GT(coverage[l], 0) << "uncovered link " << ft.topology().LinkName(static_cast<LinkId>(l));
    }
  }
}

struct Vl2PathCase {
  int da;
  int di;
  int servers;
  uint64_t expected;
};

class Vl2PathCounts : public ::testing::TestWithParam<Vl2PathCase> {};

TEST_P(Vl2PathCounts, ClosedForm) {
  const Vl2 vl2(GetParam().da, GetParam().di, GetParam().servers);
  const Vl2Routing routing(vl2);
  EXPECT_EQ(routing.TotalPathCount(), GetParam().expected);
}

// VL2(40,24,40) = 4,588,800 matches the paper's Table 2 row exactly. The paper's VL2(20,12,20)
// row says 70,800 = half of our 141,600 — consistent with unordered pairs there; we enumerate
// ordered pairs everywhere (see EXPERIMENTS.md).
INSTANTIATE_TEST_SUITE_P(PaperSizes, Vl2PathCounts,
                         ::testing::Values(Vl2PathCase{40, 24, 40, 4588800},
                                           Vl2PathCase{20, 12, 20, 141600},
                                           Vl2PathCase{8, 4, 2, 896}),
                         [](const auto& info) {
                           return "da" + std::to_string(info.param.da) + "di" +
                                  std::to_string(info.param.di);
                         });

TEST(Vl2Routing, FullEnumerationValid) {
  const Vl2 vl2(8, 4, 2);
  const Vl2Routing routing(vl2);
  const PathStore paths = routing.Enumerate(PathEnumMode::kFull);
  EXPECT_EQ(paths.size(), routing.TotalPathCount());
  const Topology& topo = vl2.topology();
  for (size_t p = 0; p < paths.size(); ++p) {
    const auto links = paths.Links(static_cast<PathId>(p));
    ASSERT_GE(links.size(), 3u);
    ASSERT_LE(links.size(), 4u);
    for (LinkId l : links) {
      EXPECT_TRUE(topo.link(l).monitored);
    }
  }
}

TEST(Vl2Routing, ReducedCoversAllLinks) {
  const Vl2 vl2(8, 4, 2);
  const Vl2Routing routing(vl2);
  const PathStore paths = routing.Enumerate(PathEnumMode::kSymmetryReduced);
  EXPECT_LT(paths.size(), routing.TotalPathCount());
  std::vector<int> coverage(vl2.topology().NumLinks(), 0);
  for (size_t p = 0; p < paths.size(); ++p) {
    for (LinkId l : paths.Links(static_cast<PathId>(p))) {
      ++coverage[static_cast<size_t>(l)];
    }
  }
  for (size_t l = 0; l < coverage.size(); ++l) {
    if (vl2.topology().link(static_cast<LinkId>(l)).monitored) {
      EXPECT_GT(coverage[l], 0);
    }
  }
}

struct BcubePathCase {
  int n;
  int k;
  uint64_t expected;
};

class BcubePathCounts : public ::testing::TestWithParam<BcubePathCase> {};

TEST_P(BcubePathCounts, ClosedFormMatchesPaper) {
  const Bcube bc(GetParam().n, GetParam().k);
  const BcubeRouting routing(bc);
  EXPECT_EQ(routing.TotalPathCount(), GetParam().expected);
}

// BCube(4,2)=12,096 and BCube(8,2)=784,896 are paper Table 2 rows; BCube(8,4)=5,368,545,280
// is checked in closed form.
INSTANTIATE_TEST_SUITE_P(PaperSizes, BcubePathCounts,
                         ::testing::Values(BcubePathCase{4, 2, 12096},
                                           BcubePathCase{8, 2, 784896},
                                           BcubePathCase{8, 4, 5368545280ULL}),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param.n) + "k" +
                                  std::to_string(info.param.k);
                         });

TEST(BcubeRouting, CorrectionPathsReachDestination) {
  const Bcube bc(4, 2);
  const BcubeRouting routing(bc);
  std::vector<LinkId> links;
  // Fully differing pair: every rotation corrects all 3 digits => 6 links.
  routing.CorrectionPath(0, 21, 0, links);  // 0 = (0,0,0), 21 = (1,1,1)
  EXPECT_EQ(links.size(), 6u);
  // Single-digit pair: one correction, 2 links regardless of rotation.
  for (int start = 0; start < 3; ++start) {
    routing.CorrectionPath(0, 1, start, links);
    EXPECT_EQ(links.size(), 2u);
  }
}

TEST(BcubeRouting, RotationsGiveDisjointIntermediateHops) {
  const Bcube bc(4, 1);
  const BcubeRouting routing(bc);
  // For a fully-differing pair in BCube(n,1) the two rotations are link-disjoint.
  std::vector<LinkId> a;
  std::vector<LinkId> b;
  routing.CorrectionPath(0, 5, 0, a);  // 0=(0,0), 5=(1,1)
  routing.CorrectionPath(0, 5, 1, b);
  std::set<LinkId> sa(a.begin(), a.end());
  for (LinkId l : b) {
    EXPECT_EQ(sa.count(l), 0u);
  }
}

TEST(BcubeRouting, FullEnumerationMatchesClosedForm) {
  const Bcube bc(4, 1);
  const BcubeRouting routing(bc);
  const PathStore paths = routing.Enumerate(PathEnumMode::kFull);
  EXPECT_EQ(paths.size(), routing.TotalPathCount());
}

TEST(Ecmp, DeterministicPerFlow) {
  const FatTree ft(8);
  FlowKey key{ft.Server(0, 0, 0), ft.Server(5, 2, 1), 1000, 2000, 17};
  const auto p1 = FatTreeEcmpPath(ft, key);
  const auto p2 = FatTreeEcmpPath(ft, key);
  EXPECT_EQ(p1, p2);
}

TEST(Ecmp, PortsSpreadAcrossPaths) {
  const FatTree ft(8);
  std::set<std::vector<LinkId>> distinct;
  for (uint16_t port = 0; port < 64; ++port) {
    FlowKey key{ft.Server(0, 0, 0), ft.Server(5, 2, 1), port, 2000, 17};
    distinct.insert(FatTreeEcmpPath(ft, key));
  }
  // 16 possible inter-pod paths; hashing 64 ports should find many of them.
  EXPECT_GE(distinct.size(), 8u);
}

TEST(Ecmp, IntraTorPathIsTwoServerLinks) {
  const FatTree ft(4);
  FlowKey key{ft.Server(0, 0, 0), ft.Server(0, 0, 1), 1, 2, 17};
  const auto path = FatTreeEcmpPath(ft, key);
  ASSERT_EQ(path.size(), 2u);
  EXPECT_EQ(path[0], ft.ServerLink(0, 0, 0));
  EXPECT_EQ(path[1], ft.ServerLink(0, 0, 1));
}

TEST(Ecmp, IntraPodAvoidsCore) {
  const FatTree ft(4);
  FlowKey key{ft.Server(0, 0, 0), ft.Server(0, 1, 1), 9, 9, 17};
  const auto path = FatTreeEcmpPath(ft, key);
  ASSERT_EQ(path.size(), 4u);  // server, edge-agg, agg-edge, server
  for (LinkId l : path) {
    EXPECT_LT(ft.topology().link(l).tier, 2);
  }
}

TEST(Ecmp, ReverseFlowSwapsEndpoints) {
  FlowKey key{1, 2, 10, 20, 17};
  const FlowKey rev = ReverseFlow(key);
  EXPECT_EQ(rev.src, 2);
  EXPECT_EQ(rev.dst, 1);
  EXPECT_EQ(rev.src_port, 20);
  EXPECT_EQ(rev.dst_port, 10);
}

}  // namespace
}  // namespace detector
