// Collector-fabric tests (PR 6): the PartitionMap ownership function (exactly-one owner,
// deterministic rebuild after churn, hash fallback for unmapped pingers), wrong-partition
// rejection across a CollectorGroup, sharded ingest equivalence (K shards fold the same
// totals as one), overflow accounting under concurrent bounded Offer/Drain (8 producers:
// folded + dropped == offered, exactly), the pipelined staleness enforcer, and the
// system-level gates — multi-collector barriered windows bit-identical to direct mode, and
// pipelined windows meeting the bounded-staleness contract under injected drop/reorder while
// still converging to the direct-mode result on a lossless wire.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/detector/system.h"
#include "src/net/loopback.h"
#include "src/report/codec.h"
#include "src/report/collector.h"
#include "src/report/collector_group.h"
#include "src/report/partition.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

std::vector<uint8_t> EncodedFrame(NodeId pinger, uint64_t window_id, uint64_t seq,
                                  PathId slot, int64_t sent, int64_t lost) {
  ReportFrame frame;
  frame.pinger = pinger;
  frame.window_id = window_id;
  frame.seq = seq;
  frame.paths.push_back(WirePathDelta{slot, 0, /*target=*/pinger + 1000, sent, lost});
  std::vector<uint8_t> wire;
  ReportCodec::Encode(frame, wire);
  return wire;
}

TEST(PartitionMap, ExactlyOneOwnerAndDeterministicBuild) {
  // Unsorted with duplicates: Build must sort + dedup before dealing.
  const std::vector<NodeId> pingers = {17, 3, 99, 3, 42, 8, 17, 55, 21, 64, 7, 30, 12};
  const PartitionMap map = PartitionMap::Build(pingers, 3);
  EXPECT_EQ(map.num_partitions(), 3u);
  EXPECT_EQ(map.num_pingers(), 11u);  // after dedup

  // Exactly one owner per pinger, and the deal is round-robin over the sorted set — the
  // property that lets any two processes derive the identical map with no coordination.
  std::vector<NodeId> sorted = {3, 7, 8, 12, 17, 21, 30, 42, 55, 64, 99};
  std::vector<size_t> owned(3, 0);
  for (size_t i = 0; i < sorted.size(); ++i) {
    const int p = map.PartitionOf(sorted[i]);
    ASSERT_GE(p, 0) << "pinger " << sorted[i] << " unmapped";
    ASSERT_LT(p, 3);
    EXPECT_EQ(static_cast<size_t>(p), i % 3) << "pinger " << sorted[i];
    EXPECT_EQ(map.RouteOf(sorted[i]), p);
    ++owned[static_cast<size_t>(p)];
  }
  for (size_t p = 0; p < 3; ++p) {
    EXPECT_GT(owned[p], 0u) << "partition " << p << " owns nothing";
  }

  // Same set in any order => the same map (operator== compares the full deal).
  std::vector<NodeId> reversed(sorted.rbegin(), sorted.rend());
  EXPECT_EQ(PartitionMap::Build(reversed, 3), map);

  // Unmapped pingers: PartitionOf says so, RouteOf falls back to the shared hash — still
  // in range, still identical across independently-built maps (agent vs collector side).
  EXPECT_EQ(map.PartitionOf(12345), -1);
  const int fallback = map.RouteOf(12345);
  ASSERT_GE(fallback, 0);
  ASSERT_LT(fallback, 3);
  EXPECT_EQ(PartitionMap::Build(reversed, 3).RouteOf(12345), fallback);

  // N clamps to >= 1 and a single partition owns everything.
  const PartitionMap solo = PartitionMap::Build(sorted, 0);
  EXPECT_EQ(solo.num_partitions(), 1u);
  for (const NodeId p : sorted) {
    EXPECT_EQ(solo.PartitionOf(p), 0);
  }
}

TEST(PartitionMap, RepartitionAfterChurnIsDeterministic) {
  std::vector<NodeId> fleet = {10, 20, 30, 40, 50, 60, 70, 80};
  const PartitionMap before = PartitionMap::Build(fleet, 4);

  // A server dies: rebuild without it. The new deal is a pure function of the surviving
  // set, so every process converges on it independently.
  std::vector<NodeId> survivors = {10, 20, 40, 50, 60, 70, 80};
  const PartitionMap after = PartitionMap::Build(survivors, 4);
  EXPECT_NE(after, before);
  EXPECT_EQ(after.PartitionOf(30), -1);
  std::vector<NodeId> shuffled = {80, 10, 60, 40, 20, 70, 50};
  EXPECT_EQ(PartitionMap::Build(shuffled, 4), after);
  for (size_t i = 0; i < survivors.size(); ++i) {
    EXPECT_EQ(after.PartitionOf(survivors[i]), static_cast<int>(i % 4));
  }
}

TEST(CollectorFabric, WrongPartitionFramesRejectedAndCounted) {
  ObservationStore store;
  store.EnsureSlots(4);
  const Topology empty_topo("none");
  Watchdog wd(empty_topo);

  // Pingers {1, 2} dealt over 2 partitions: 1 -> 0, 2 -> 1.
  CollectorGroupOptions options;
  options.num_collectors = 2;
  CollectorGroup group(store, PartitionMap::Build({1, 2}, 2), options);
  group.BeginWindow(1);
  ASSERT_EQ(group.RouteOf(1), 0);
  ASSERT_EQ(group.RouteOf(2), 1);

  // Pinger 2's frame lands on collector 0: rejected-and-counted, nothing folds — the
  // fabric cannot double-count even if an agent misroutes.
  const std::vector<uint8_t> wire = EncodedFrame(2, 1, 0, 0, 100, 10);
  ASSERT_TRUE(group.collector(0).Offer(wire));
  EXPECT_EQ(group.collector(0).Drain(), 0u);
  EXPECT_EQ(group.collector(0).stats().wrong_partition_dropped, 1u);
  EXPECT_EQ(group.collector(0).stats().frames_folded, 0u);
  {
    const ObservationView totals = store.RunningTotals(4, wd);
    EXPECT_EQ(totals[0].sent, 0);
    EXPECT_EQ(totals[0].lost, 0);
  }

  // The same frame on its rightful owner folds normally — the misroute burned nothing.
  ASSERT_TRUE(group.collector(1).Offer(wire));
  EXPECT_EQ(group.collector(1).Drain(), 1u);
  const CollectorStats rolled = group.stats();
  EXPECT_EQ(rolled.frames_folded, 1u);
  EXPECT_EQ(rolled.wrong_partition_dropped, 1u);
  const ObservationView totals = store.RunningTotals(4, wd);
  EXPECT_EQ(totals[0].sent, 100);
  EXPECT_EQ(totals[0].lost, 10);

  // An unmapped (mid-window-born) pinger routes by the hash fallback: folds there, is
  // rejected everywhere else.
  const NodeId born = 777;
  const int owner = group.RouteOf(born);
  const int other = 1 - owner;
  const std::vector<uint8_t> born_wire = EncodedFrame(born, 1, 0, 1, 30, 3);
  ASSERT_TRUE(group.collector(static_cast<size_t>(other)).Offer(born_wire));
  group.collector(static_cast<size_t>(other)).Drain();
  ASSERT_TRUE(group.collector(static_cast<size_t>(owner)).Offer(born_wire));
  group.collector(static_cast<size_t>(owner)).Drain();
  EXPECT_EQ(group.stats().wrong_partition_dropped, 2u);
  EXPECT_EQ(group.stats().frames_folded, 2u);
}

TEST(Collector, ShardedIngestFoldsIdenticalTotals) {
  const Topology empty_topo("none");
  Watchdog wd(empty_topo);
  // 12 pingers x 3 frames, slots spread over 8; fold through 1 and 4 ingest shards.
  std::vector<std::vector<uint8_t>> frames;
  for (NodeId pinger = 100; pinger < 112; ++pinger) {
    for (uint64_t seq = 0; seq < 3; ++seq) {
      frames.push_back(EncodedFrame(pinger, 1, seq, static_cast<PathId>(pinger % 8),
                                    10 + static_cast<int64_t>(seq),
                                    static_cast<int64_t>(seq)));
    }
  }

  auto fold = [&](size_t shards, CollectorStats* stats) {
    ObservationStore store;
    store.EnsureSlots(8);
    Collector collector(store, CollectorOptions{.ingest_shards = shards});
    EXPECT_EQ(collector.num_ingest_shards(), shards);
    collector.BeginWindow(1);
    for (const auto& wire : frames) {
      EXPECT_TRUE(collector.Offer(wire));
    }
    // Drain shard-by-shard, the way concurrent pool tasks would split the work.
    size_t folded = 0;
    for (size_t s = 0; s < shards; ++s) {
      folded += collector.DrainShardRange(s, s + 1);
    }
    EXPECT_EQ(folded, frames.size());
    EXPECT_EQ(collector.queued(), 0u);
    *stats = collector.stats();
    const ObservationView view = store.RunningTotals(8, wd);
    return Observations(view.begin(), view.end());
  };

  CollectorStats serial_stats;
  CollectorStats sharded_stats;
  const Observations serial = fold(1, &serial_stats);
  const Observations sharded = fold(4, &sharded_stats);
  EXPECT_EQ(serial_stats.frames_folded, sharded_stats.frames_folded);
  EXPECT_EQ(serial_stats.observations_folded, sharded_stats.observations_folded);
  ASSERT_EQ(serial.size(), sharded.size());
  for (size_t slot = 0; slot < serial.size(); ++slot) {
    EXPECT_EQ(serial[slot].sent, sharded[slot].sent) << "slot " << slot;
    EXPECT_EQ(serial[slot].lost, sharded[slot].lost) << "slot " << slot;
  }
}

// Satellite gate: 8 producer threads hammer bounded shard queues while 4 drainers fold
// concurrently. Every Offer is accounted exactly once under the shard lock, so
// folded + overflow-dropped == offered holds to the frame, and the store's global totals
// equal 10/1 per folded frame — no lost, double-counted, or phantom folds.
TEST(Collector, ConcurrentOfferDrainAccounting) {
  const Topology empty_topo("none");
  Watchdog wd(empty_topo);
  ObservationStore store;
  store.EnsureSlots(8);
  Collector collector(store,
                      CollectorOptions{.queue_capacity = 4, .ingest_shards = 4});
  collector.BeginWindow(1);

  constexpr size_t kProducers = 8;
  constexpr size_t kFramesPerProducer = 400;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> accepted{0};

  std::vector<std::thread> drainers;
  for (size_t s = 0; s < 4; ++s) {
    drainers.emplace_back([&, s] {
      while (!done.load(std::memory_order_acquire)) {
        collector.DrainShardRange(s, s + 1);
        std::this_thread::yield();
      }
      collector.DrainShardRange(s, s + 1);  // sweep what landed after the last pass
    });
  }
  std::vector<std::thread> producers;
  for (size_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const NodeId pinger = static_cast<NodeId>(200 + p);
      uint64_t ok = 0;
      for (uint64_t seq = 0; seq < kFramesPerProducer; ++seq) {
        if (collector.Offer(
                EncodedFrame(pinger, 1, seq, static_cast<PathId>(p), 10, 1))) {
          ++ok;
        }
      }
      accepted.fetch_add(ok, std::memory_order_acq_rel);
    });
  }
  for (auto& t : producers) {
    t.join();
  }
  done.store(true, std::memory_order_release);
  for (auto& t : drainers) {
    t.join();
  }

  EXPECT_EQ(collector.queued(), 0u);
  const CollectorStats stats = collector.stats();
  const uint64_t offered = kProducers * kFramesPerProducer;
  EXPECT_EQ(stats.frames_folded + stats.queue_overflow_dropped, offered);
  EXPECT_EQ(stats.frames_folded, accepted.load());
  EXPECT_GT(stats.frames_folded, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.duplicates_dropped, 0u);
  EXPECT_EQ(stats.observations_folded, stats.frames_folded);  // one record per frame

  const ObservationView totals = store.RunningTotals(8, wd);
  int64_t sent = 0;
  int64_t lost = 0;
  for (const PathObservation& obs : totals) {
    sent += obs.sent;
    lost += obs.lost;
  }
  EXPECT_EQ(sent, static_cast<int64_t>(stats.frames_folded) * 10);
  EXPECT_EQ(lost, static_cast<int64_t>(stats.frames_folded));
}

TEST(Collector, DrainStaleEnforcesDepthBound) {
  const Topology empty_topo("none");
  Watchdog wd(empty_topo);
  ObservationStore store;
  store.EnsureSlots(2);
  Collector collector(store);
  collector.BeginWindow(1);

  // Frame A arrives at boundary 0, frame B at boundary 1; the budgeted pump never gets to
  // them. With depth 2, the enforcer must fold A exactly when its age hits 2, then B.
  collector.Offer(EncodedFrame(1, 1, 0, 0, 10, 1));
  collector.AdvanceBoundary();
  collector.Offer(EncodedFrame(1, 1, 1, 0, 10, 1));
  collector.AdvanceBoundary();
  ASSERT_EQ(collector.boundary(), 2u);

  constexpr uint64_t kDepth = 2;
  EXPECT_EQ(collector.DrainStale(collector.boundary() - kDepth + 1), 1u);  // A only
  EXPECT_EQ(collector.queued(), 1u);
  EXPECT_EQ(collector.stats().frames_straddled, 1u);
  EXPECT_EQ(collector.stats().max_fold_staleness, kDepth);

  collector.AdvanceBoundary();
  EXPECT_EQ(collector.DrainStale(collector.boundary() - kDepth + 1), 1u);  // now B
  EXPECT_EQ(collector.queued(), 0u);
  EXPECT_EQ(collector.stats().frames_straddled, 2u);
  EXPECT_EQ(collector.stats().max_fold_staleness, kDepth) << "enforcer let a fold age past depth";
}

DetectorSystemOptions FabricTestOptions(double pps) {
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = pps;
  options.segments_per_window = 6;
  options.diagnose_every_segments = 2;
  return options;
}

std::vector<ChurnEvent> FabricChurn(const FatTree& ft) {
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{8.0, TopologyDelta::LinkDown(ft.AggCoreLink(1, 0, 1))});
  churn.push_back(ChurnEvent{14.0, TopologyDelta::NodeDown(ft.Server(2, 0, 1))});
  churn.push_back(ChurnEvent{23.0, TopologyDelta::LinkUp(ft.AggCoreLink(1, 0, 1))});
  return churn;
}

// The fabric acceptance gate: N collectors x K ingest shards in the default barriered mode
// stay bit-identical to direct mode — totals, verdicts, alarms, traffic — through mid-window
// churn (which forces a repartition at the next window open: the dead server's pinglist is
// gone) and across probe thread counts.
TEST(CollectorFabric, BarrieredWindowsBitIdenticalToDirect) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 1, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.08;
  scenario.failures.push_back(f);
  const std::vector<ChurnEvent> churn = FabricChurn(ft);

  for (const size_t collectors : {size_t{2}, size_t{4}}) {
    for (const size_t threads : {size_t{1}, size_t{2}}) {
      auto run = [&](bool report_plane) {
        DetectorSystemOptions options = FabricTestOptions(150);
        options.probe_threads = threads;
        options.report_plane = report_plane;
        options.report_collectors = collectors;
        options.report_ingest_shards = 2;
        DetectorSystem system(routing, options);
        Rng rng(99);
        std::vector<DetectorSystem::StreamingWindowResult> out;
        out.push_back(system.RunWindowStreaming(scenario, churn, rng));
        out.push_back(system.RunWindowStreaming(scenario, {}, rng));
        const CollectorGroup* group = system.collector_group();
        EXPECT_EQ(group != nullptr, report_plane);
        if (report_plane && group != nullptr) {
          EXPECT_EQ(group->num_collectors(), collectors);
          const CollectorStats stats = group->stats();
          EXPECT_GT(stats.frames_folded, 0u);
          EXPECT_EQ(stats.wrong_partition_dropped, 0u)
              << "emitters and collectors disagree on the partition map";
          EXPECT_EQ(stats.decode_errors, 0u);
          EXPECT_EQ(stats.duplicates_dropped, 0u);
          // Every partition carried traffic: the fabric actually spread the fleet.
          for (size_t c = 0; c < collectors; ++c) {
            EXPECT_GT(group->collector(c).stats().frames_folded, 0u)
                << "collector " << c << " folded nothing";
          }
        }
        return out;
      };
      const auto direct = run(false);
      const auto report = run(true);
      ASSERT_EQ(direct.size(), report.size());
      for (size_t w = 0; w < direct.size(); ++w) {
        const std::string when = "collectors=" + std::to_string(collectors) +
                                 " threads=" + std::to_string(threads) +
                                 " window=" + std::to_string(w);
        ExpectIdenticalWindows(direct[w].window, report[w].window, when);
        ASSERT_EQ(direct[w].timeline.size(), report[w].timeline.size()) << when;
        for (size_t i = 0; i < direct[w].timeline.size(); ++i) {
          ExpectIdenticalLocalizations(direct[w].timeline[i].localization,
                                       report[w].timeline[i].localization,
                                       when + " boundary " + std::to_string(i));
        }
      }
    }
  }
}

// Pipelined mode's contract under a faulty wire: frames straddle boundaries (that is the
// point), but every fold lands within report_pipeline_depth boundaries of arrival, frames
// never corrupt, and a hard failure is still localized.
TEST(CollectorFabric, PipelinedBoundedStalenessUnderDropAndReorder) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 0, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  DetectorSystemOptions options = FabricTestOptions(120);
  options.probe_threads = 1;
  options.report_plane = true;
  options.report_collectors = 2;
  options.report_ingest_shards = 2;
  options.report_pipeline = true;
  options.report_pipeline_depth = 2;
  options.report_pump_budget = 1;  // starve the pump so the enforcer has to do the work
  DetectorSystem system(routing, options);
  system.SetReportTransportFactory([](size_t i) {
    LoopbackOptions loopback;
    loopback.drop_rate = 0.15;
    loopback.reorder_rate = 0.4;
    loopback.seed = 31 + i;
    return std::make_unique<LoopbackTransport>(loopback);
  });
  Rng rng(5);
  const auto result = system.RunWindowStreaming(scenario, {}, rng);

  const CollectorStats stats = system.collector_group()->stats();
  EXPECT_GT(stats.frames_folded, 0u);
  EXPECT_GT(stats.frames_straddled, 0u) << "budget 1 never deferred a fold — not pipelined";
  EXPECT_GT(stats.max_fold_staleness, 0u);
  EXPECT_LE(stats.max_fold_staleness,
            static_cast<uint64_t>(options.report_pipeline_depth))
      << "bounded-staleness contract broken";
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.duplicates_dropped, 0u);

  bool found = false;
  for (const SuspectLink& s : result.window.localization.links) {
    found |= s.link == f.link;
  }
  EXPECT_TRUE(found) << "full-loss failure lost in the pipelined report plane";
}

// On a lossless wire the pipelined window end must converge to exactly the direct-mode
// result: the deferred folds all land (epoch stamps place late folds where on-time folds
// would have), the final drain leaves nothing queued, and the window-end diagnosis is
// bit-identical — only mid-window boundaries may see totals later than barriered mode would.
TEST(CollectorFabric, PipelinedLosslessWindowEndMatchesDirect) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(0, 1, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.08;
  scenario.failures.push_back(f);
  const std::vector<ChurnEvent> churn = FabricChurn(ft);

  auto run = [&](bool report_plane, bool pipeline) {
    DetectorSystemOptions options = FabricTestOptions(150);
    options.probe_threads = 1;
    options.report_plane = report_plane;
    options.report_collectors = 2;
    options.report_ingest_shards = 2;
    options.report_pipeline = pipeline;
    options.report_pipeline_depth = 2;
    options.report_pump_budget = 1;
    DetectorSystem system(routing, options);
    Rng rng(99);
    std::vector<DetectorSystem::WindowResult> out;
    out.push_back(system.RunWindowStreaming(scenario, churn, rng).window);
    out.push_back(system.RunWindowStreaming(scenario, {}, rng).window);
    if (report_plane) {
      const CollectorStats stats = system.collector_group()->stats();
      EXPECT_EQ(stats.decode_errors, 0u);
      EXPECT_EQ(stats.duplicates_dropped, 0u);
      EXPECT_EQ(system.collector_group()->queued(), 0u) << "window-end drain left a backlog";
      if (pipeline) {
        EXPECT_GT(stats.frames_straddled, 0u) << "pipelined run never straddled a boundary";
      }
    }
    return out;
  };

  const auto direct = run(false, false);
  const auto pipelined = run(true, true);
  ASSERT_EQ(direct.size(), pipelined.size());
  for (size_t w = 0; w < direct.size(); ++w) {
    ExpectIdenticalWindows(direct[w], pipelined[w],
                           "pipelined lossless window " + std::to_string(w));
  }
}

}  // namespace
}  // namespace detector
