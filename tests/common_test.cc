// Unit tests for the common runtime substrate.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <thread>

#include "src/common/bitset.h"
#include "src/common/flags.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"
#include "src/common/union_find.h"
#include "src/common/xml.h"

namespace detector {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a() == b() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBoundedCoversRange) {
  Rng rng(3);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.NextBounded(10));
  }
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.rbegin(), 9u);
}

TEST(Rng, BinomialMeanMatches) {
  Rng rng(11);
  const int trials = 2000;
  const int64_t n = 100;
  const double p = 0.3;
  double total = 0;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(rng.NextBinomial(n, p));
  }
  EXPECT_NEAR(total / trials, static_cast<double>(n) * p, 1.0);
}

TEST(Rng, BinomialEdgeCases) {
  Rng rng(5);
  EXPECT_EQ(rng.NextBinomial(0, 0.5), 0);
  EXPECT_EQ(rng.NextBinomial(100, 0.0), 0);
  EXPECT_EQ(rng.NextBinomial(100, 1.0), 100);
}

TEST(Rng, LogUniformWithinBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.NextLogUniform(1e-4, 1.0);
    EXPECT_GE(x, 1e-4);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, ShufflePermutes) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Hash, SplitMix64IsStable) {
  EXPECT_EQ(SplitMix64(0), SplitMix64(0));
  EXPECT_NE(SplitMix64(1), SplitMix64(2));
}

TEST(Stats, OnlineMeanVariance) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.Variance(), 4.571428, 1e-5);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(Stats, ConfusionRatios) {
  ConfusionCounts c;
  c.true_positives = 9;
  c.false_positives = 1;
  c.false_negatives = 1;
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.9);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRatio(), 0.1);
  EXPECT_DOUBLE_EQ(c.FalseNegativeRatio(), 0.1);
}

TEST(Stats, ConfusionZeroDenominators) {
  ConfusionCounts c;
  EXPECT_DOUBLE_EQ(c.Accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.FalsePositiveRatio(), 0.0);
}

TEST(Bitset, SetTestClear) {
  DynamicBitset b(130);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(Bitset, OrWithAndEquality) {
  DynamicBitset a(100);
  DynamicBitset b(100);
  a.Set(3);
  b.Set(97);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(3));
  EXPECT_TRUE(a.Test(97));
  DynamicBitset c(100);
  c.Set(3);
  c.Set(97);
  EXPECT_TRUE(a == c);
  EXPECT_EQ(a.Hash(), c.Hash());
}

TEST(Bitset, ForEachSetBitAscending) {
  DynamicBitset b(256);
  for (size_t i : {5u, 63u, 64u, 200u}) {
    b.Set(i);
  }
  std::vector<size_t> seen;
  b.ForEachSetBit([&](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<size_t>{5, 63, 64, 200}));
}

TEST(UnionFind, BasicUnions) {
  UnionFind uf(10);
  EXPECT_EQ(uf.NumSets(), 10u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(1, 2));
  EXPECT_FALSE(uf.Union(0, 2));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_FALSE(uf.Connected(0, 3));
  EXPECT_EQ(uf.NumSets(), 8u);
  EXPECT_EQ(uf.SetSize(1), 3u);
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=2", "--name=fattree", "--verbose", "pos1"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(5, const_cast<char**>(argv)));
  EXPECT_EQ(flags.GetInt("alpha", 0), 2);
  EXPECT_EQ(flags.GetString("name", ""), "fattree");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_FALSE(flags.GetBool("absent", false));
  EXPECT_EQ(flags.GetDouble("missing", 1.5), 1.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, DoubleDashStopsParsing) {
  const char* argv[] = {"prog", "--", "--not-a-flag"};
  Flags flags;
  ASSERT_TRUE(flags.Parse(3, const_cast<char**>(argv)));
  EXPECT_FALSE(flags.Has("not-a-flag"));
  ASSERT_EQ(flags.positional().size(), 1u);
}

TEST(Flags, RejectsUnknownFlagsOnceRegistered) {
  // A typo'd flag must fail loudly instead of silently falling back to the default.
  const char* argv[] = {"prog", "--trails=50"};
  Flags flags;
  flags.Describe("trials", "trial count");
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)));

  const char* ok[] = {"prog", "--trials=50", "--help", "pos"};
  Flags strict;
  strict.Describe("trials", "trial count");
  ASSERT_TRUE(strict.Parse(4, const_cast<char**>(ok)));  // --help is always known
  EXPECT_EQ(strict.GetInt("trials", 0), 50);
  EXPECT_TRUE(strict.Has("help"));
  ASSERT_EQ(strict.positional().size(), 1u);

  // Nothing registered: ad-hoc parser keeps accepting anything.
  const char* adhoc[] = {"prog", "--whatever=1"};
  Flags loose;
  ASSERT_TRUE(loose.Parse(2, const_cast<char**>(adhoc)));
  EXPECT_EQ(loose.GetInt("whatever", 0), 1);
}

TEST(Flags, HelpWinsOverValidation) {
  // Help-before-validation ordering: with --help anywhere on the line, Parse must succeed so
  // the binary prints usage and exits 0 — even when other flags are unknown (and, by the
  // standard "if (flags.Has("help")) { print; return 0; }" prologue every bench uses before
  // its own flag validation, even when required flags are absent or malformed).
  const char* argv[] = {"prog", "--bogus=3", "--help", "--also-bogus"};
  Flags flags;
  flags.Describe("trials", "trial count");
  ASSERT_TRUE(flags.Parse(4, const_cast<char**>(argv)));
  EXPECT_TRUE(flags.Has("help"));
  EXPECT_FALSE(flags.Has("bogus"));  // unknown flags are dropped, not recorded

  // --help after the "--" terminator is positional, so unknown flags fail loudly again.
  const char* late[] = {"prog", "--bogus=3", "--", "--help"};
  Flags strict;
  strict.Describe("trials", "trial count");
  EXPECT_FALSE(strict.Parse(4, const_cast<char**>(late)));
}

TEST(Table, RendersAligned) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  const std::string out = t.Render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long-name"), std::string::npos);
  // Each row ends exactly after the last column (no trailing separator).
  EXPECT_EQ(out.find("22\n") != std::string::npos, true);
}

TEST(Table, CsvOutput) {
  TablePrinter t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(TablePrinter::Fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TablePrinter::FmtPercent(0.983, 1), "98.3");
  EXPECT_EQ(TablePrinter::FmtInt(1234), "1234");
}

TEST(Xml, WriteParseRoundTrip) {
  XmlWriter w;
  w.Open("root");
  w.Attribute("version", static_cast<int64_t>(3));
  w.Open("child");
  w.Attribute("name", "a<b&c");
  w.Text("hello & goodbye");
  w.Close();
  w.Open("empty");
  w.Close();
  w.Close();
  const std::string xml = w.TakeString();

  auto root = ParseXml(xml);
  EXPECT_EQ(root->name, "root");
  EXPECT_EQ(root->AttrInt("version", 0), 3);
  ASSERT_EQ(root->children.size(), 2u);
  const XmlNode* child = root->Child("child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->Attr("name"), "a<b&c");
  EXPECT_EQ(child->text, "hello & goodbye");
  EXPECT_NE(root->Child("empty"), nullptr);
  EXPECT_EQ(root->Child("missing"), nullptr);
}

TEST(Xml, MalformedInputThrows) {
  EXPECT_THROW(ParseXml("<a><b></a>"), std::runtime_error);
  EXPECT_THROW(ParseXml("<a attr=foo></a>"), std::runtime_error);
  EXPECT_THROW(ParseXml("no xml at all"), std::runtime_error);
}

TEST(Xml, EscapeCoversAllEntities) {
  EXPECT_EQ(XmlEscape("<>&\"'"), "&lt;&gt;&amp;&quot;&apos;");
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitAll();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelForCoversIndices) {
  std::vector<std::atomic<int>> hits(64);
  ThreadPool::ParallelFor(64, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(Timer, MeasuresElapsed) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_GE(t.ElapsedSeconds(), 0.005);
  EXPECT_LT(t.ElapsedSeconds(), 5.0);
}

}  // namespace
}  // namespace detector
