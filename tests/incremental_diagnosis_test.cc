// Incremental sliding-segment diagnosis tests (PR 4). Two oracles:
//
//  - Bit-exactness: DiagnoseRunning (incremental PLL over dirty components) must equal
//    DiagnoseRunningFull (full PLL over the same running totals) at every cadence boundary —
//    through record ingest, slot invalidation, watchdog flips, mid-window churn (matrix
//    rewiring + cache invalidation), recompute cycles, and window clears.
//  - The sliding-segment view must localize a loss episode that appears and clears inside one
//    window — one the whole-window totals dilute below the loss threshold — and must report
//    it gone once it leaves the trailing window.
#include <gtest/gtest.h>

#include <vector>

#include "src/detector/diagnoser.h"
#include "src/detector/system.h"
#include "src/localize/preprocess.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

TEST(MatrixPartition, ComponentsAreConsistent) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  const MatrixPartition part = BuildMatrixPartition(matrix);

  ASSERT_GT(part.num_components, 0);
  EXPECT_EQ(part.num_paths, matrix.NumPaths());
  EXPECT_EQ(part.num_links, matrix.NumLinks());

  // Every path lands in the component of every link it traverses.
  for (size_t p = 0; p < matrix.NumPaths(); ++p) {
    const int32_t c = part.component_of_path[p];
    ASSERT_GE(c, 0) << "path " << p;
    for (const LinkId link : matrix.paths().Links(static_cast<PathId>(p))) {
      const int32_t dense = matrix.links().Dense(link);
      if (dense >= 0) {
        EXPECT_EQ(part.component_of_link[static_cast<size_t>(dense)], c)
            << "path " << p << " link " << link;
      }
    }
  }
  // The member lists partition the domains exactly.
  size_t paths_total = 0;
  size_t links_total = 0;
  for (int32_t c = 0; c < part.num_components; ++c) {
    paths_total += part.paths_of_component[static_cast<size_t>(c)].size();
    links_total += part.links_of_component[static_cast<size_t>(c)].size();
  }
  EXPECT_EQ(paths_total, matrix.NumPaths());
  EXPECT_EQ(links_total, static_cast<size_t>(matrix.NumLinks()));
}

// Drives a Diagnoser through ingest, invalidation, and watchdog flips, asserting at every
// step that the incremental diagnosis equals the full-PLL diagnosis on the same totals.
TEST(IncrementalDiagnosis, MatchesFullAtEveryBoundary) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  Watchdog wd(ft.topology());
  Diagnoser diagnoser;

  const NodeId p1 = ft.Server(0, 0, 0);
  const NodeId p2 = ft.Server(1, 0, 0);
  const NodeId t1 = ft.Server(2, 0, 0);

  auto expect_match = [&](const char* when) {
    // Full first: it reads the totals without consuming the dirty tracker the incremental
    // diagnosis is about to take.
    const LocalizeResult full = diagnoser.DiagnoseRunningFull(matrix, wd);
    const LocalizeResult incremental = diagnoser.DiagnoseRunning(matrix, wd);
    EXPECT_EQ(incremental.links, full.links) << when;
  };

  auto ingest = [&](NodeId pinger, PathId slot, int64_t sent, int64_t lost) {
    PingerWindowResult report;
    report.pinger = pinger;
    report.reports.push_back(PathReport{slot, t1, sent, lost});
    diagnoser.Ingest(report);
  };

  expect_match("empty store");
  ingest(p1, 0, 200, 0);
  ingest(p1, 3, 200, 150);
  ingest(p2, 3, 200, 140);  // replica
  expect_match("first losses");

  // A clean boundary (no new observations): everything served from cached verdicts.
  expect_match("no-op boundary");

  // More loss on other slots, then a retroactive pinger drop and recovery.
  ingest(p2, 7, 300, 60);
  expect_match("second component lossy");
  wd.MarkDown(p2);
  expect_match("pinger flagged");
  ingest(p2, 7, 100, 100);  // streamed while down: filtered out of the totals
  expect_match("ingest while flagged");
  wd.MarkUp(p2);
  expect_match("pinger recovered");

  // Mid-window slot invalidation (no matrix change: the partition stays valid).
  const std::vector<PathId> vacated = {3};
  diagnoser.DropReports(vacated);
  expect_match("slot vacated");
  ingest(p1, 3, 50, 50);
  expect_match("slot reused");

  // Window end consumes everything; the next window starts from all-dirty.
  diagnoser.Diagnose(matrix, wd);
  expect_match("after window clear");
  ingest(p1, 5, 120, 80);
  expect_match("next window");
}

// End-to-end: streaming windows with mid-window churn (matrix rewiring included), once with
// incremental diagnosis and once with full PLL at every boundary — identical timelines, and
// tier-1 streaming-vs-batch behavior preserved across a RecomputeCycle.
TEST(IncrementalDiagnosis, SystemTimelinesMatchFullUnderChurn) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 60;
  options.segments_per_window = 6;
  options.diagnose_every_segments = 1;

  const LinkId flapper = ft.AggCoreLink(3, 1, 1);
  const NodeId dying_server = ft.Server(2, 1, 0);
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{7.0, TopologyDelta::LinkDown(flapper)});
  churn.push_back(ChurnEvent{13.0, TopologyDelta::NodeDown(dying_server)});
  churn.push_back(ChurnEvent{22.0, TopologyDelta::LinkUp(flapper)});

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(1, 0, 1);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  DetectorSystemOptions full_options = options;
  full_options.incremental_diagnosis = false;

  DetectorSystem incremental(routing, options);
  DetectorSystem full(routing, full_options);
  Rng inc_rng(4242);
  Rng full_rng(4242);

  for (int window = 0; window < 3; ++window) {
    const auto churn_slice = window == 0 ? churn : std::vector<ChurnEvent>{};
    const auto inc_result = incremental.RunWindowStreaming(scenario, churn_slice, inc_rng);
    const auto full_result = full.RunWindowStreaming(scenario, churn_slice, full_rng);

    ExpectIdenticalWindows(inc_result.window, full_result.window,
                           "window " + std::to_string(window));
    ASSERT_EQ(inc_result.timeline.size(), full_result.timeline.size());
    for (size_t i = 0; i < inc_result.timeline.size(); ++i) {
      EXPECT_EQ(inc_result.timeline[i].segment, full_result.timeline[i].segment);
      ExpectIdenticalLocalizations(
          inc_result.timeline[i].localization, full_result.timeline[i].localization,
          "window " + std::to_string(window) + " boundary " + std::to_string(i));
    }
    if (window == 0) {
      // The injected failure is seen mid-window by both.
      EXPECT_GT(inc_result.FirstDetectionSeconds(f.link), 0.0);
      EXPECT_EQ(inc_result.FirstDetectionSeconds(f.link),
                full_result.FirstDetectionSeconds(f.link));
    }
    if (window == 1) {
      // A full re-plan between windows: both caches must survive the matrix replacement.
      incremental.RecomputeCycle();
      full.RecomputeCycle();
    }
  }
}

// The headline scenario: a full-loss episode spanning two of fifteen segments. Whole-window
// totals dilute it below the loss threshold (4 s of loss over 30 s ~ 13% < the 20% threshold
// used here), so batch diagnosis and the window-end diagnosis miss it; the trailing
// two-segment view sees ~100% loss while the episode is in window and nothing once it leaves.
TEST(SlidingSegmentDiagnosis, LocalizesAppearAndClearEpisode) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 120;
  options.confirm_packets = 0;          // confirmation retries would re-shape the loss ratios
  options.probe.base_loss_rate = 0.0;   // keep the arithmetic of the dilution argument exact
  options.pll.preprocess.path_loss_ratio_threshold = 0.2;
  options.segments_per_window = 15;     // 2 s slices
  options.diagnose_every_segments = 1;
  options.streaming_view = StreamingViewMode::kSliding;
  options.sliding_window_segments = 2;  // trailing 4 s

  const LinkId episode_link = ft.EdgeAggLink(1, 0, 1);
  FailureScenario scenario;
  FailureEpisode episode;
  episode.failure.link = episode_link;
  episode.failure.type = FailureType::kFullLoss;
  episode.start_seconds = 4.0;  // segments [3, 4]: loss from t=4 s, cleared at t=8 s
  episode.end_seconds = 8.0;
  scenario.episodes.push_back(episode);

  DetectorSystem system(routing, options);
  Rng rng(77);
  const auto streamed = system.RunWindowStreaming(scenario, {}, rng);

  auto contains = [&](const LocalizeResult& result) {
    for (const SuspectLink& s : result.links) {
      if (s.link == episode_link) {
        return true;
      }
    }
    return false;
  };

  // Whole-window diagnosis (the window result and the final timeline entry) misses it.
  EXPECT_FALSE(contains(streamed.window.localization))
      << "whole-window totals should dilute the episode below the loss threshold";

  // The sliding view localizes it while it is inside the trailing window...
  const double first = streamed.FirstDetectionSeconds(episode_link);
  EXPECT_GT(first, episode.start_seconds);
  EXPECT_LE(first, 8.0 + 1e-9);

  // ...and reports it gone at every boundary after it leaves the trailing window
  // (episode end 8 s + trailing width 4 s).
  bool seen_during = false;
  for (const auto& d : streamed.timeline) {
    const bool hit = contains(d.localization);
    if (d.time_seconds > episode.start_seconds && d.time_seconds <= 12.0) {
      seen_during |= hit;
    } else {
      EXPECT_FALSE(hit) << "boundary at " << d.time_seconds
                        << " s still names the cleared episode";
    }
  }
  EXPECT_TRUE(seen_during);

  // The cumulative view on the same probing tells the wrong story on both ends: its
  // accumulated ratio decays only slowly after the episode clears, so it keeps alarming for
  // many boundaries past t = 12 s where the sliding view already reports clear — and by the
  // window end the dilution flips it to a miss (asserted above on window.localization, which
  // is the cumulative final). The trailing view is what tracks the episode's actual extent.
  DetectorSystemOptions cumulative_options = options;
  cumulative_options.streaming_view = StreamingViewMode::kCumulative;
  DetectorSystem cumulative(routing, cumulative_options);
  Rng cumulative_rng(77);
  const auto cumulative_streamed = cumulative.RunWindowStreaming(scenario, {}, cumulative_rng);
  ExpectIdenticalWindows(streamed.window, cumulative_streamed.window,
                         "probing is view-independent");
  double cumulative_last_named = -1.0;
  for (const auto& d : cumulative_streamed.timeline) {
    if (contains(d.localization)) {
      cumulative_last_named = d.time_seconds;
    }
  }
  EXPECT_GT(cumulative_last_named, 12.0)
      << "cumulative diagnosis should still name the episode after the sliding view cleared";
}

TEST(SlidingSegmentDiagnosis, DecayViewSeesPersistentFailure) {
  // Smoke for the optional exponential-decay view: a persistent failure keeps showing up in
  // decayed totals, and the final window result stays the cumulative one.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 60;
  options.segments_per_window = 6;
  options.diagnose_every_segments = 2;
  options.streaming_view = StreamingViewMode::kDecay;
  options.decay_factor = 0.5;

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 1, 0);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  DetectorSystem system(routing, options);
  Rng rng(11);
  const auto streamed = system.RunWindowStreaming(scenario, {}, rng);
  EXPECT_GT(streamed.FirstDetectionSeconds(f.link), 0.0);
  ExpectIdenticalLocalizations(streamed.timeline.back().localization,
                               streamed.window.localization, "final entry is cumulative");
}

TEST(SlidingSegmentDiagnosis, QuantizedDecayHalvingPeriod) {
  Diagnoser diagnoser;
  diagnoser.set_decay_factor(0.5);
  EXPECT_EQ(diagnoser.DecayHalvingPeriod(), 1);  // halve every boundary
  diagnoser.set_decay_factor(0.9);
  EXPECT_EQ(diagnoser.DecayHalvingPeriod(), 7);  // 0.9^7 ~ 0.478
  diagnoser.set_decay_factor(0.99);
  EXPECT_EQ(diagnoser.DecayHalvingPeriod(), 69);
}

TEST(SlidingSegmentDiagnosis, QuantizedDecayAgreesWithExactOnEpisodes) {
  // Quantized decay (integer totals, shift-halving at fixed boundaries) is an approximation
  // of the exact per-boundary multiply — the contract is episode-detection agreement, not
  // bit-exactness: both views must see an appear-and-clear loss episode while its decayed
  // residue is above threshold and report it gone at (nearly) the same boundary after.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 120;
  options.confirm_packets = 0;
  options.probe.base_loss_rate = 0.0;
  options.pll.preprocess.path_loss_ratio_threshold = 0.2;
  options.segments_per_window = 15;  // 2 s slices
  options.diagnose_every_segments = 1;
  options.streaming_view = StreamingViewMode::kDecay;
  options.decay_factor = 0.5;

  const LinkId episode_link = ft.EdgeAggLink(1, 0, 1);
  FailureScenario scenario;
  FailureEpisode episode;
  episode.failure.link = episode_link;
  episode.failure.type = FailureType::kFullLoss;
  episode.start_seconds = 4.0;
  episode.end_seconds = 8.0;
  scenario.episodes.push_back(episode);

  auto detection_interval = [&](bool quantized) {
    DetectorSystemOptions opts = options;
    opts.decay_quantized = quantized;
    DetectorSystem system(routing, opts);
    Rng rng(77);
    const auto streamed = system.RunWindowStreaming(scenario, {}, rng);
    double first = -1.0;
    double last = -1.0;
    for (const auto& d : streamed.timeline) {
      for (const SuspectLink& s : d.localization.links) {
        if (s.link == episode_link) {
          if (first < 0.0) {
            first = d.time_seconds;
          }
          last = d.time_seconds;
        }
      }
    }
    return std::pair<double, double>{first, last};
  };

  const auto [exact_first, exact_last] = detection_interval(false);
  const auto [quant_first, quant_last] = detection_interval(true);

  // Both views detect the episode while it is live...
  EXPECT_GT(exact_first, episode.start_seconds);
  EXPECT_GT(quant_first, episode.start_seconds);
  EXPECT_LE(exact_first, episode.end_seconds + 1e-9);
  EXPECT_LE(quant_first, episode.end_seconds + 1e-9);
  // ...both report it cleared before the window ends (decayed residue under threshold)...
  EXPECT_LT(exact_last, options.window_seconds - 1e-9);
  EXPECT_LT(quant_last, options.window_seconds - 1e-9);
  // ...and the detection interval endpoints agree to within one segment boundary (the only
  // divergence quantization can introduce here is integer-vs-rounded-double residue).
  const double segment = options.window_seconds / options.segments_per_window;
  EXPECT_NEAR(exact_first, quant_first, segment + 1e-9);
  EXPECT_NEAR(exact_last, quant_last, segment + 1e-9);
}

// ROADMAP open item, closed in PR 5: the trailing ring keys its per-segment deltas by
// (slot, epoch), so a mid-window repair that vacates and reuses a slot purges the dead
// epoch's deltas instead of leaving a retraction that blinds DiagnoseTrailing on the slot
// for up to W segments. This is the surgical pre/post-fix discriminator: before the fix the
// reused slot's trailing total was 0 sent / 100 lost (unusable), and the episode on it was
// invisible at the first post-repair boundary.
TEST(SlidingSegmentDiagnosis, SlotReuseDoesNotBlindTrailingView) {
  // Three chained links, one single-link probe path per link: slot i covers exactly link i.
  Topology topo("toy");
  std::vector<NodeId> nodes;
  for (int i = 0; i <= 3; ++i) {
    nodes.push_back(topo.AddNode(NodeKind::kTor, 0, i, "n" + std::to_string(i)));
  }
  std::vector<LinkId> links;
  for (int i = 0; i < 3; ++i) {
    links.push_back(topo.AddLink(nodes[static_cast<size_t>(i)],
                                 nodes[static_cast<size_t>(i) + 1], 1));
  }
  PathStore paths;
  for (int i = 0; i < 3; ++i) {
    const std::vector<LinkId> path_links = {links[static_cast<size_t>(i)]};
    paths.Add(0, 1, path_links);
  }
  const ProbeMatrix matrix(std::move(paths), LinkIndex::ForMonitored(topo));
  Watchdog wd(topo);

  Diagnoser diagnoser;
  diagnoser.set_sliding_segments(2);
  ObservationStore& store = diagnoser.store();
  store.EnsureSlots(3);
  ObservationStore::Shard& shard = store.OpenShard(nodes[0]);

  auto record_segment = [&](int64_t slot1_sent, int64_t slot1_lost) {
    shard.RecordPath(0, nodes[1], 100, 0);
    shard.RecordPath(1, nodes[2], slot1_sent, slot1_lost);
    shard.RecordPath(2, nodes[3], 100, 0);
    diagnoser.AdvanceSegment(matrix, wd);
  };

  // Two healthy segments fill the trailing ring and the boundary totals.
  record_segment(100, 0);
  record_segment(100, 0);
  EXPECT_TRUE(diagnoser.DiagnoseTrailing(matrix, wd).links.empty());

  // Mid-window repair vacates slot 1 (epoch bump retracts its 200 folded packets) and reuses
  // it; the new occupant's first segment observes full loss on link 1.
  const std::vector<PathId> vacated = {1};
  diagnoser.DropReports(vacated);
  record_segment(100, 100);

  // Exactly the episode link, at full loss — the untouched slots' clean trailing traffic
  // raises nothing, and the reused slot is diagnosable at the first post-repair boundary.
  const LocalizeResult result = diagnoser.DiagnoseTrailing(matrix, wd);
  ASSERT_EQ(result.links.size(), 1u) << "reused slot still blind in the trailing view";
  EXPECT_EQ(result.links[0].link, links[1]);
  EXPECT_GT(result.links[0].estimated_loss_rate, 0.9);
}

// The PR 5 wart, fixed in PR 6: a watchdog flip retracts a node's records from the running
// totals *without* an epoch bump, so the ring used to ingest the retraction as a negative
// segment delta. Once the positive pre-flip delta aged out of the trailing window the
// retraction remained alone and the trailing sums went negative — nonsense observations fed
// to PLL. The fix restarts flipped slots (purges their ring history, re-cuts the boundary),
// so the trailing view drops the flipped traffic instantly and resumes from real post-flip
// traffic only. Pre-fix this test fails at the "+2 segments after flip" step with
// sent = -100.
TEST(SlidingSegmentDiagnosis, WatchdogFlipNeverTurnsTrailingTotalsNegative) {
  // Same toy as SlotReuseDoesNotBlindTrailingView — slot i covers exactly link i — plus a
  // server node as the pinger: all three slots are reported by that one server, so flipping
  // it retracts everything (the watchdog only flips servers).
  Topology topo("toy");
  std::vector<NodeId> nodes;
  for (int i = 0; i <= 3; ++i) {
    nodes.push_back(topo.AddNode(NodeKind::kTor, 0, i, "n" + std::to_string(i)));
  }
  std::vector<LinkId> links;
  for (int i = 0; i < 3; ++i) {
    links.push_back(topo.AddLink(nodes[static_cast<size_t>(i)],
                                 nodes[static_cast<size_t>(i) + 1], 1));
  }
  const NodeId pinger = topo.AddNode(NodeKind::kServer, 0, 99, "pinger");
  PathStore paths;
  for (int i = 0; i < 3; ++i) {
    const std::vector<LinkId> path_links = {links[static_cast<size_t>(i)]};
    paths.Add(0, 1, path_links);
  }
  const ProbeMatrix matrix(std::move(paths), LinkIndex::ForMonitored(topo));
  Watchdog wd(topo);

  Diagnoser diagnoser;
  diagnoser.set_sliding_segments(2);
  ObservationStore& store = diagnoser.store();
  store.EnsureSlots(3);
  ObservationStore::Shard& shard = store.OpenShard(pinger);

  auto expect_trailing = [&](int64_t sent, int64_t lost, const char* when) {
    const ObservationView trailing = diagnoser.TrailingTotals(3);
    for (size_t slot = 0; slot < 3; ++slot) {
      EXPECT_EQ(trailing[slot].sent, sent) << when << " slot " << slot;
      EXPECT_EQ(trailing[slot].lost, lost) << when << " slot " << slot;
      EXPECT_GE(trailing[slot].sent, 0) << when << " slot " << slot << " went negative";
      EXPECT_GE(trailing[slot].lost, 0) << when << " slot " << slot << " went negative";
    }
  };

  // One healthy segment: the ring holds its +100 delta per slot.
  for (PathId slot = 0; slot < 3; ++slot) {
    shard.RecordPath(slot, nodes[static_cast<size_t>(slot) + 1], 100, 0);
  }
  diagnoser.AdvanceSegment(matrix, wd);
  expect_trailing(100, 0, "healthy segment");

  // The watchdog flags the pinger: its records retract from the totals with no epoch bump.
  // The flipped slots restart — trailing drops to zero at this boundary, not below it.
  wd.MarkDown(pinger);
  diagnoser.AdvanceSegment(matrix, wd);
  expect_trailing(0, 0, "flip segment");
  EXPECT_TRUE(diagnoser.DiagnoseTrailing(matrix, wd).links.empty());

  // Two more idle segments age the pre-flip delta fully out of the W=2 ring. Pre-fix the
  // lone -100 retraction delta now surfaces: trailing sent = -100.
  diagnoser.AdvanceSegment(matrix, wd);
  expect_trailing(0, 0, "+1 segment after flip");
  diagnoser.AdvanceSegment(matrix, wd);
  expect_trailing(0, 0, "+2 segments after flip");

  // Recovery flips the records back in — another restart, so no phantom +100 spike enters
  // the ring either; the slot resumes with genuinely new traffic only.
  wd.MarkUp(pinger);
  diagnoser.AdvanceSegment(matrix, wd);
  expect_trailing(0, 0, "recovery segment");

  // Fresh post-recovery traffic is the only thing the trailing view sees, and it is
  // immediately diagnosable: full loss on link 1 localizes at the very next boundary.
  shard.RecordPath(0, nodes[1], 100, 0);
  shard.RecordPath(1, nodes[2], 100, 100);
  shard.RecordPath(2, nodes[3], 100, 0);
  diagnoser.AdvanceSegment(matrix, wd);
  const ObservationView trailing = diagnoser.TrailingTotals(3);
  EXPECT_EQ(trailing[0].sent, 100);
  EXPECT_EQ(trailing[0].lost, 0);
  EXPECT_EQ(trailing[1].sent, 100);
  EXPECT_EQ(trailing[1].lost, 100);
  const LocalizeResult result = diagnoser.DiagnoseTrailing(matrix, wd);
  ASSERT_EQ(result.links.size(), 1u);
  EXPECT_EQ(result.links[0].link, links[1]);
  EXPECT_GT(result.links[0].estimated_loss_rate, 0.9);
}

// End-to-end churn-during-episode gate: a loss episode is live while a topology delta forces
// an incremental repair (slot vacate + reuse) on the same probe plane. The sliding view must
// localize the episode despite the mid-episode churn and report it gone after it leaves the
// trailing window.
TEST(SlidingSegmentDiagnosis, ChurnDuringEpisodeStillLocalized) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 120;
  options.confirm_packets = 0;
  options.probe.base_loss_rate = 0.0;
  options.pll.preprocess.path_loss_ratio_threshold = 0.2;
  options.segments_per_window = 15;  // 2 s slices
  options.diagnose_every_segments = 1;
  options.streaming_view = StreamingViewMode::kSliding;
  options.sliding_window_segments = 2;

  // The churn (an agg-core link in the episode's pod flaps down) lands at 6 s; the repair
  // vacates every path through it and reuses their slots. The episode then runs [8 s, 12 s)
  // — entirely after the churn, where a blinded reused slot would still be inside its
  // retraction window without epoch-keyed ring deltas.
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{6.0, TopologyDelta::LinkDown(ft.AggCoreLink(1, 0, 1))});

  const LinkId episode_link = ft.EdgeAggLink(1, 0, 1);
  FailureScenario scenario;
  FailureEpisode episode;
  episode.failure.link = episode_link;
  episode.failure.type = FailureType::kFullLoss;
  episode.start_seconds = 8.0;
  episode.end_seconds = 12.0;
  scenario.episodes.push_back(episode);

  DetectorSystem system(routing, options);
  Rng rng(303);
  const auto streamed = system.RunWindowStreaming(scenario, churn, rng);
  EXPECT_EQ(streamed.window.churn_events_applied, 1u);

  // Localized while live or within the trailing window behind it...
  const double first = streamed.FirstDetectionSeconds(episode_link);
  ASSERT_GT(first, episode.start_seconds) << "episode never localized under churn";
  EXPECT_LE(first, episode.end_seconds + 1e-9);
  // ...and clear at every boundary after it leaves the trailing window (12 s + 4 s).
  for (const auto& d : streamed.timeline) {
    if (d.time_seconds <= 16.0 + 1e-9 || &d == &streamed.timeline.back()) {
      continue;  // the final entry is the cumulative window-end diagnosis
    }
    for (const SuspectLink& s : d.localization.links) {
      EXPECT_NE(s.link, episode_link)
          << "boundary at " << d.time_seconds << " s still names the cleared episode";
    }
  }
}

}  // namespace
}  // namespace detector
