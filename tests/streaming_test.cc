// Continuous-diagnosis tests: the ObservationStore's maintained running totals must stay
// bit-identical to the rebuilt Snapshot under slot invalidation, watchdog retro-drops and
// recoveries, and concurrent shard ingest at any thread count — and a streaming window's
// final-segment diagnosis must be bit-identical to the batch window on the same seed.
#include <gtest/gtest.h>

#include <vector>

#include "src/detector/observation_store.h"
#include "src/detector/system.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

// The running totals and the rebuilt snapshot are integer counters over the same records —
// they must agree exactly, not approximately.
void ExpectRunningMatchesSnapshot(ObservationStore& store, size_t num_slots,
                                  const Watchdog& wd, const char* when) {
  // Order matters: RunningTotals() returns a view over the maintained buffer, Snapshot() over
  // a separate rebuilt one, so both views stay valid side by side.
  const ObservationView running = store.RunningTotals(num_slots, wd);
  const ObservationView rebuilt = store.Snapshot(num_slots, wd);
  ASSERT_EQ(running.size(), num_slots) << when;
  ASSERT_EQ(rebuilt.size(), num_slots) << when;
  for (size_t s = 0; s < num_slots; ++s) {
    EXPECT_EQ(running[s].sent, rebuilt[s].sent) << when << " slot " << s;
    EXPECT_EQ(running[s].lost, rebuilt[s].lost) << when << " slot " << s;
  }
}

TEST(RunningTotals, MatchSnapshotThroughInvalidationAndWatchdogFlips) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  ObservationStore store;
  store.EnsureSlots(4);

  const NodeId p1 = ft.Server(0, 0, 0);
  const NodeId p2 = ft.Server(0, 0, 1);
  const NodeId t1 = ft.Server(1, 0, 0);
  const NodeId t2 = ft.Server(1, 0, 1);

  ObservationStore::Shard& s1 = store.OpenShard(p1);
  ObservationStore::Shard& s2 = store.OpenShard(p2);
  s1.RecordPath(0, t1, 100, 10);
  s2.RecordPath(0, t1, 100, 8);  // replica of slot 0
  s2.RecordPath(2, t2, 50, 0);
  ExpectRunningMatchesSnapshot(store, 4, wd, "after first ingest");

  // Retroactive watchdog drop: p1's already-folded records must leave the totals...
  wd.MarkDown(p1);
  ExpectRunningMatchesSnapshot(store, 4, wd, "pinger flagged");
  // ...and records streamed while it is down stay excluded when folded.
  s1.RecordPath(2, t2, 30, 3);
  ExpectRunningMatchesSnapshot(store, 4, wd, "ingest while flagged");

  // Recovery re-adds both the retro-dropped and the flagged-while-down records.
  wd.MarkUp(p1);
  ExpectRunningMatchesSnapshot(store, 4, wd, "pinger recovered");

  // Target flagged: only records towards it vanish, from every shard.
  wd.MarkDown(t1);
  ExpectRunningMatchesSnapshot(store, 4, wd, "target flagged");

  // Slot invalidation while a target filter is active: the bump retracts slot 2 in O(1);
  // the new occupant accumulates under the fresh epoch.
  const std::vector<PathId> vacated = {2};
  store.InvalidateSlots(vacated);
  ExpectRunningMatchesSnapshot(store, 4, wd, "slot vacated");
  s1.RecordPath(2, t2, 60, 6);
  ExpectRunningMatchesSnapshot(store, 4, wd, "slot reused");

  // Invalidate again with unfolded records on the old epoch in flight, then recover t1: the
  // stale records must not be re-added (their contribution was zeroed with the slot).
  s2.RecordPath(2, t1, 40, 4);
  store.InvalidateSlots(vacated);
  wd.MarkUp(t1);
  ExpectRunningMatchesSnapshot(store, 4, wd, "stale epoch not resurrected");

  store.Clear();
  ExpectRunningMatchesSnapshot(store, 4, wd, "after clear");
  EXPECT_EQ(store.RunningTotals(4, wd)[0].sent, 0);
}

TEST(RunningTotals, GrowsWithTheSlotTable) {
  const FatTree ft(4);
  const Watchdog wd(ft.topology());
  ObservationStore store;
  store.EnsureSlots(2);
  store.OpenShard(ft.Server(0, 0, 0)).RecordPath(1, ft.Server(1, 0, 0), 10, 1);
  ExpectRunningMatchesSnapshot(store, 2, wd, "small table");
  // A larger matrix after repair: the view widens, old totals stay in place.
  store.EnsureSlots(6);
  store.OpenShard(ft.Server(0, 0, 0)).RecordPath(5, ft.Server(1, 0, 1), 20, 2);
  ExpectRunningMatchesSnapshot(store, 6, wd, "grown table");
  EXPECT_EQ(store.RunningTotals(6, wd)[1].sent, 10);
  EXPECT_EQ(store.RunningTotals(6, wd)[5].sent, 20);
}

// End-to-end acceptance: streaming diagnosis at a segment cadence produces a final result
// bit-identical to the batch window on the same seed and slicing — at 1, 2 and 8 probe
// threads, with mid-window link churn AND a server retro-drop in the same window.
TEST(StreamingWindow, FinalSegmentMatchesBatchAcrossThreads) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 60;
  options.segments_per_window = 6;
  options.diagnose_every_segments = 2;

  const LinkId flapper = ft.AggCoreLink(3, 1, 1);
  const NodeId dying_server = ft.Server(2, 1, 0);
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{7.0, TopologyDelta::LinkDown(flapper)});
  churn.push_back(ChurnEvent{13.0, TopologyDelta::NodeDown(dying_server)});
  churn.push_back(ChurnEvent{22.0, TopologyDelta::LinkUp(flapper)});

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(1, 0, 1);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  for (const size_t threads : {1u, 2u, 8u}) {
    DetectorSystemOptions opts = options;
    opts.probe_threads = threads;

    DetectorSystem batch(routing, opts);
    Rng batch_rng(4242);
    const auto batch_result = batch.RunWindowWithChurn(scenario, churn, batch_rng);

    DetectorSystem streaming(routing, opts);
    Rng streaming_rng(4242);
    const auto streamed = streaming.RunWindowStreaming(scenario, churn, streaming_rng);

    ExpectIdenticalWindows(batch_result, streamed.window, "streaming vs batch");
    EXPECT_EQ(streamed.window.churn_events_applied, 3u);

    // Cadence 2 over 6 segments: boundaries at 10, 20, 30 s; the last one is the window's
    // own diagnosis.
    ASSERT_EQ(streamed.timeline.size(), 3u);
    EXPECT_EQ(streamed.timeline[0].segment, 2);
    EXPECT_DOUBLE_EQ(streamed.timeline[0].time_seconds, 10.0);
    EXPECT_DOUBLE_EQ(streamed.timeline[2].time_seconds, 30.0);
    ExpectIdenticalLocalizations(streamed.timeline.back().localization,
                                 streamed.window.localization, "final timeline entry");
    // The injected failure is seen before the window closes.
    const double first = streamed.FirstDetectionSeconds(f.link);
    EXPECT_GT(first, 0.0);
    EXPECT_LT(first, 30.0);
  }
}

TEST(StreamingWindow, CadenceDoesNotChangeTheFinalResult) {
  // Mid-window diagnoses are non-consuming: diagnosing every segment and diagnosing only at
  // the end must produce the same final window.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 60;
  options.segments_per_window = 5;

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(0, 1, 0);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.2;
  scenario.failures.push_back(f);

  std::vector<DetectorSystem::WindowResult> finals;
  std::vector<size_t> timeline_sizes;
  for (const int cadence : {1, 5}) {
    DetectorSystemOptions opts = options;
    opts.diagnose_every_segments = cadence;
    DetectorSystem system(routing, opts);
    Rng rng(99);
    const auto streamed = system.RunWindowStreaming(scenario, {}, rng);
    finals.push_back(streamed.window);
    timeline_sizes.push_back(streamed.timeline.size());
  }
  ExpectIdenticalWindows(finals[0], finals[1], "cadence 1 vs 5");
  EXPECT_EQ(timeline_sizes[0], 5u);
  EXPECT_EQ(timeline_sizes[1], 1u);
}

TEST(IntraRackFiltering, DownedTargetsDrawNoProbes) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  const NodeId pinger_node = ft.Server(0, 0, 0);
  const NodeId healthy_target = ft.Server(0, 0, 1);
  const NodeId downed_target = ft.Server(0, 1, 0);

  Pinglist list;
  list.pinger = pinger_node;
  list.packets_per_second = 10.0;
  PinglistEntry to_healthy;
  to_healthy.path_id = PinglistEntry::kIntraRackPath;
  to_healthy.target_server = healthy_target;
  to_healthy.route = {ft.topology().FindLink(pinger_node, ft.Tor(0, 0)),
                      ft.topology().FindLink(ft.Tor(0, 0), healthy_target)};
  PinglistEntry to_downed = to_healthy;
  to_downed.target_server = downed_target;
  list.entries = {to_healthy, to_downed};

  ProbeConfig probe;
  probe.base_loss_rate = 0.0;
  const ProbeEngine engine(ft.topology(), FailureScenario{}, probe);
  const Pinger pinger(list, /*confirm_packets=*/0);

  wd.MarkDown(downed_target);
  Rng rng(5);
  const auto filtered = pinger.RunWindow(engine, 30.0, rng, &wd);
  // Only the healthy target is probed, and it inherits the skipped entry's budget share:
  // the full 300-packet window budget instead of 150.
  ASSERT_EQ(filtered.reports.size(), 1u);
  EXPECT_EQ(filtered.reports[0].target, healthy_target);
  EXPECT_EQ(filtered.reports[0].sent, 300);
  EXPECT_EQ(filtered.probes_sent, 300);

  // Without a watchdog (standalone mode) both entries still run.
  Rng rng2(5);
  const auto unfiltered = pinger.RunWindow(engine, 30.0, rng2);
  EXPECT_EQ(unfiltered.reports.size(), 2u);
}

TEST(IntraRackFiltering, SystemStopsProbingDownedServerMidWindow) {
  // A server dies mid-window via churn: the remaining slices must not probe it intra-rack,
  // and the streaming window still matches batch (the filter is part of both paths).
  // FatTree(6) has 3 servers per rack with 2 pingers, so non-pinger targets exist.
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 40;
  options.segments_per_window = 4;
  DetectorSystem probe_system(routing, options);

  // Pick a server that is a target but not a pinger, so its shard does not simply vanish.
  NodeId victim = kInvalidNode;
  for (const Pinglist& list : probe_system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      if (entry.path_id == PinglistEntry::kIntraRackPath) {
        bool is_pinger = false;
        for (const Pinglist& other : probe_system.pinglists()) {
          is_pinger |= other.pinger == entry.target_server && !other.entries.empty();
        }
        if (!is_pinger) {
          victim = entry.target_server;
        }
      }
    }
  }
  ASSERT_NE(victim, kInvalidNode);

  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{10.0, TopologyDelta::NodeDown(victim)});

  DetectorSystem batch(routing, options);
  Rng batch_rng(31);
  const auto batch_result = batch.RunWindowWithChurn(FailureScenario{}, churn, batch_rng);

  DetectorSystem streaming(routing, options);
  Rng streaming_rng(31);
  const auto streamed = streaming.RunWindowStreaming(FailureScenario{}, churn, streaming_rng);
  ExpectIdenticalWindows(batch_result, streamed.window, "server down mid-window");
  EXPECT_FALSE(streaming.watchdog().IsHealthy(victim));
}

}  // namespace
}  // namespace detector
