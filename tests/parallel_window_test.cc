// Sharded probe-plane tests: parallel-vs-serial window equivalence (the per-shard RNG streams
// must make WindowResult bit-identical at any thread count, with and without mid-window
// churn), and ObservationStore semantics — streaming accumulation, replica merging, watchdog
// filtering, and epoch-based slot invalidation with mid-window slot reuse.
#include <gtest/gtest.h>

#include <vector>

#include "src/detector/observation_store.h"
#include "src/detector/system.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

void ExpectIdenticalAtThreads(const DetectorSystem::WindowResult& a,
                              const DetectorSystem::WindowResult& b, int threads) {
  ExpectIdenticalWindows(a, b, "threads=" + std::to_string(threads));
}

TEST(ParallelWindow, BitIdenticalAcrossThreadCounts) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 2;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;
  options.probe_threads = 1;
  DetectorSystem system(routing, options);

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(1, 0, 1);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.05;
  scenario.failures.push_back(f);

  // Serial baseline, then the same seed at higher thread counts — including more threads than
  // the host has cores, and more than there are shards.
  Rng serial_rng(1234);
  const auto baseline = system.RunWindow(scenario, serial_rng);
  EXPECT_GT(baseline.probes_sent, 0);
  for (const int threads : {2, 8}) {
    system.set_probe_threads(static_cast<size_t>(threads));
    Rng rng(1234);
    const auto parallel = system.RunWindow(scenario, rng);
    ExpectIdenticalAtThreads(baseline, parallel, threads);
  }
}

TEST(ParallelWindow, BitIdenticalUnderMidWindowChurn) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;

  const LinkId flapper = ft.AggCoreLink(3, 1, 1);
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{8.0, TopologyDelta::LinkDown(flapper)});
  churn.push_back(ChurnEvent{21.0, TopologyDelta::LinkUp(flapper)});

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(2, 0, 1);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  // Each thread count gets a fresh system (churn mutates matrix/pinglist state) and the same
  // seed; every observable field of the result must match the serial baseline.
  std::vector<DetectorSystem::WindowResult> results;
  for (const size_t threads : {1u, 2u, 8u}) {
    DetectorSystemOptions opts = options;
    opts.probe_threads = threads;
    DetectorSystem system(routing, opts);
    Rng rng(77);
    results.push_back(system.RunWindowWithChurn(scenario, churn, rng));
    EXPECT_EQ(results.back().churn_events_applied, 2u);
  }
  ExpectIdenticalAtThreads(results[0], results[1], 2);
  ExpectIdenticalAtThreads(results[0], results[2], 8);
  // The injected (non-churn) failure is still localized.
  ASSERT_GE(results[0].localization.links.size(), 1u);
  EXPECT_EQ(results[0].localization.links[0].link, f.link);
}

TEST(ObservationStore, StreamsMergesAndFilters) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  ObservationStore store;
  store.EnsureSlots(4);

  ObservationStore::Shard& s1 = store.OpenShard(ft.Server(0, 0, 0));
  ObservationStore::Shard& s2 = store.OpenShard(ft.Server(0, 0, 1));
  s1.RecordPath(0, ft.Server(1, 0, 0), 100, 10);
  s2.RecordPath(0, ft.Server(1, 0, 0), 100, 8);  // replica of the same slot
  s2.RecordPath(2, ft.Server(1, 0, 1), 50, 0);
  s1.RecordIntraRack(ft.Server(0, 0, 1), 30, 15);

  const ObservationView view = store.Snapshot(4, wd);
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[0].sent, 200);  // replicas summed
  EXPECT_EQ(view[0].lost, 18);
  EXPECT_EQ(view[1].sent, 0);
  EXPECT_EQ(view[2].sent, 50);
  ASSERT_EQ(store.IntraRackObservations(wd).size(), 1u);

  // Watchdog filtering: a flagged pinger's whole shard and a flagged target's records vanish.
  wd.MarkDown(ft.Server(0, 0, 0));
  const ObservationView filtered = store.Snapshot(4, wd);
  EXPECT_EQ(filtered[0].sent, 100);  // only the healthy replica remains
  EXPECT_TRUE(store.IntraRackObservations(wd).empty());
  wd.MarkUp(ft.Server(0, 0, 0));
  wd.MarkDown(ft.Server(1, 0, 1));  // target of slot 2
  EXPECT_EQ(store.Snapshot(4, wd)[2].sent, 0);
}

TEST(ObservationStore, InvalidationOrphansOnlyOldEpoch) {
  const FatTree ft(4);
  const Watchdog wd(ft.topology());
  ObservationStore store;
  store.EnsureSlots(3);
  ObservationStore::Shard& shard = store.OpenShard(ft.Server(0, 0, 0));
  shard.RecordPath(1, ft.Server(1, 0, 0), 100, 40);
  shard.RecordPath(2, ft.Server(2, 0, 0), 100, 1);

  // Mid-window: slot 1 is vacated by repair; its buffered counters must not survive...
  const std::vector<PathId> vacated = {1};
  store.InvalidateSlots(vacated);
  EXPECT_EQ(store.Snapshot(3, wd)[1].sent, 0);
  EXPECT_EQ(store.Snapshot(3, wd)[2].sent, 100);  // untouched slot unaffected

  // ...but the slot's new occupant accumulates normally under the fresh epoch, including
  // records streamed by a different pinger after redispatch.
  ObservationStore::Shard& other = store.OpenShard(ft.Server(0, 1, 0));
  other.RecordPath(1, ft.Server(3, 0, 0), 60, 6);
  EXPECT_EQ(store.Snapshot(3, wd)[1].sent, 60);
  EXPECT_EQ(store.Snapshot(3, wd)[1].lost, 6);

  // A second invalidation of the same slot orphans the new occupant too.
  store.InvalidateSlots(vacated);
  EXPECT_EQ(store.Snapshot(3, wd)[1].sent, 0);

  store.Clear();
  EXPECT_EQ(store.num_shards(), 0u);
  EXPECT_EQ(store.Snapshot(3, wd)[2].sent, 0);
}

TEST(ObservationStore, MidWindowInvalidationFlowsThroughDiagnose) {
  // End-to-end shape of RunWindowWithChurn: segment 1 reports on a slot, churn vacates it,
  // segment 2 reports on the slot's new occupant; Diagnose must see only the new counters.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  const Watchdog wd(ft.topology());
  Diagnoser diagnoser;

  PingerWindowResult seg1;
  seg1.pinger = ft.Server(0, 0, 0);
  seg1.reports.push_back(PathReport{0, ft.Server(1, 0, 0), 200, 200});
  diagnoser.Ingest(seg1);

  const std::vector<PathId> vacated = {0};
  diagnoser.DropReports(vacated);

  PingerWindowResult seg2;
  seg2.pinger = ft.Server(0, 0, 0);
  seg2.reports.push_back(PathReport{0, ft.Server(1, 0, 0), 100, 0});
  diagnoser.Ingest(seg2);

  const Observations obs = diagnoser.AggregatedObservations(matrix, wd);
  EXPECT_EQ(obs[0].sent, 100);
  EXPECT_EQ(obs[0].lost, 0);
  // The stale 100%-loss counters are gone: nothing to localize.
  const LocalizeResult result = diagnoser.Diagnose(matrix, wd);
  EXPECT_TRUE(result.links.empty());
}

}  // namespace
}  // namespace detector
