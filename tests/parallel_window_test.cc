// Sharded probe-plane tests: parallel-vs-serial window equivalence (the per-shard RNG streams
// must make WindowResult bit-identical at any thread count, with and without mid-window
// churn), and ObservationStore semantics — streaming accumulation, replica merging, watchdog
// filtering, and epoch-based slot invalidation with mid-window slot reuse.
#include <gtest/gtest.h>

#include <vector>

#include "src/detector/observation_store.h"
#include "src/detector/system.h"
#include "src/routing/fattree_routing.h"
#include "src/sim/churn.h"
#include "src/topo/fattree.h"
#include "tests/window_equality.h"

namespace detector {
namespace {

void ExpectIdenticalAtThreads(const DetectorSystem::WindowResult& a,
                              const DetectorSystem::WindowResult& b, int threads) {
  ExpectIdenticalWindows(a, b, "threads=" + std::to_string(threads));
}

TEST(ParallelWindow, BitIdenticalAcrossThreadCounts) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 2;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;
  options.probe_threads = 1;
  DetectorSystem system(routing, options);

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(1, 0, 1);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.05;
  scenario.failures.push_back(f);

  // Serial baseline, then the same seed at higher thread counts — including more threads than
  // the host has cores, and more than there are shards.
  Rng serial_rng(1234);
  const auto baseline = system.RunWindow(scenario, serial_rng);
  EXPECT_GT(baseline.probes_sent, 0);
  for (const int threads : {2, 8}) {
    system.set_probe_threads(static_cast<size_t>(threads));
    Rng rng(1234);
    const auto parallel = system.RunWindow(scenario, rng);
    ExpectIdenticalAtThreads(baseline, parallel, threads);
  }
}

TEST(ParallelWindow, BitIdenticalUnderMidWindowChurn) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;

  const LinkId flapper = ft.AggCoreLink(3, 1, 1);
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{8.0, TopologyDelta::LinkDown(flapper)});
  churn.push_back(ChurnEvent{21.0, TopologyDelta::LinkUp(flapper)});

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.EdgeAggLink(2, 0, 1);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);

  // Each thread count gets a fresh system (churn mutates matrix/pinglist state) and the same
  // seed; every observable field of the result must match the serial baseline.
  std::vector<DetectorSystem::WindowResult> results;
  for (const size_t threads : {1u, 2u, 8u}) {
    DetectorSystemOptions opts = options;
    opts.probe_threads = threads;
    DetectorSystem system(routing, opts);
    Rng rng(77);
    results.push_back(system.RunWindowWithChurn(scenario, churn, rng));
    EXPECT_EQ(results.back().churn_events_applied, 2u);
  }
  ExpectIdenticalAtThreads(results[0], results[1], 2);
  ExpectIdenticalAtThreads(results[0], results[2], 8);
  // The injected (non-churn) failure is still localized.
  ASSERT_GE(results[0].localization.links.size(), 1u);
  EXPECT_EQ(results[0].localization.links[0].link, f.link);
}

TEST(ParallelWindow, SubshardedBitIdenticalAcrossThreadAndSubshardCounts) {
  // Sub-sharded execution keys every entry's RNG stream by (window seed, pinger, entry
  // index), so the counters must be invariant to BOTH how the entry ranges are cut and how
  // they are scheduled: the full 1/2/8-thread x 1/2/4-sub-shard grid agrees bit-for-bit.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 2;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;
  options.probe_threads = 1;
  options.probe_subshards = 1;
  DetectorSystem system(routing, options);

  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(1, 0, 1);
  f.type = FailureType::kRandomPartial;
  f.loss_rate = 0.05;
  scenario.failures.push_back(f);

  Rng baseline_rng(4321);
  const auto baseline = system.RunWindow(scenario, baseline_rng);
  EXPECT_GT(baseline.probes_sent, 0);
  for (const int threads : {1, 2, 8}) {
    for (const int subshards : {1, 2, 4}) {
      system.set_probe_threads(static_cast<size_t>(threads));
      system.set_probe_subshards(subshards);
      Rng rng(4321);
      const auto run = system.RunWindow(scenario, rng);
      ExpectIdenticalWindows(baseline, run,
                             "threads=" + std::to_string(threads) +
                                 " subshards=" + std::to_string(subshards));
    }
  }
}

TEST(ParallelWindow, SubshardedMatchesLegacyDistributionUnderFiltering) {
  // Sub-sharded mode is a different RNG trajectory than the legacy per-pinger stream, but the
  // budget split must be byte-for-byte the same rule: with watchdog filtering active the
  // per-entry packet counts (and so probes_sent) equal the legacy run's on the same seed.
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 40;
  options.probe_threads = 1;
  options.probe.base_loss_rate = 0.0;  // lossless: no stochastic confirmation probes
  options.confirm_packets = 0;
  DetectorSystem system(routing, options);
  system.watchdog().MarkDown(ft.Server(1, 0, 1));

  FailureScenario scenario;
  Rng legacy_rng(99);
  const auto legacy = system.RunWindow(scenario, legacy_rng);
  system.set_probe_subshards(4);
  Rng sub_rng(99);
  const auto sub = system.RunWindow(scenario, sub_rng);
  // No failures injected: both trajectories observe zero loss, so the only probe-count
  // difference could come from a diverging budget split. Confirmation probes never fire.
  EXPECT_EQ(legacy.probes_sent, sub.probes_sent);
  EXPECT_EQ(legacy.bytes_sent, sub.bytes_sent);
}

TEST(ParallelWindow, BudgetRemainderRedistributionIsDeterministic) {
  // When watchdog filtering skips entries, the skipped budget is redistributed and the
  // integer-split remainder goes to the first eligible entries in pinglist order — a rule
  // that depends only on the shard's own list, never on scheduling.
  const FatTree ft(6);  // 3 servers per rack: a pinger plus two distinct intra-rack targets
  Watchdog wd(ft.topology());
  const NodeId pinger_node = ft.Server(0, 0, 0);
  const NodeId healthy = ft.Server(0, 0, 1);
  const NodeId downed = ft.Server(0, 0, 2);

  Pinglist list;
  list.pinger = pinger_node;
  list.packets_per_second = 10.04;  // 301-packet budget over 30 s: odd, so the split leaves r=1
  auto intra_entry = [&](NodeId target) {
    PinglistEntry entry;
    entry.path_id = PinglistEntry::kIntraRackPath;
    entry.target_server = target;
    entry.route = {ft.topology().FindLink(pinger_node, ft.Tor(0, 0)),
                   ft.topology().FindLink(ft.Tor(0, 0), target)};
    return entry;
  };
  list.entries = {intra_entry(healthy), intra_entry(downed), intra_entry(healthy),
                  intra_entry(downed)};

  ProbeConfig probe;
  probe.base_loss_rate = 0.0;
  const ProbeEngine engine(ft.topology(), FailureScenario{}, probe);
  const Pinger pinger(list, /*confirm_packets=*/0);

  wd.MarkDown(downed);
  Rng rng(5);
  const auto filtered = pinger.RunWindow(engine, 30.0, rng, &wd);
  // Budget 301 over 2 eligible entries: 150 each plus the 1-packet remainder to the first.
  ASSERT_EQ(filtered.reports.size(), 2u);
  EXPECT_EQ(filtered.reports[0].sent, 151);
  EXPECT_EQ(filtered.reports[1].sent, 301 - 151);
  EXPECT_EQ(filtered.probes_sent, 301);  // the full budget, nothing truncated away

  // Without filtering, the classic round-robin split stands (no remainder spreading).
  Rng rng2(5);
  const auto unfiltered = pinger.RunWindow(engine, 30.0, rng2);
  ASSERT_EQ(unfiltered.reports.size(), 4u);
  for (const PathReport& report : unfiltered.reports) {
    EXPECT_EQ(report.sent, 75);  // 301 / 4, remainder left on the floor as before
  }
}

TEST(ParallelWindow, BitIdenticalAcrossThreadsWithFilteringActive) {
  // The redistribution (remainder included) must be independent of shard execution order:
  // a window with watchdog filtering active — a downed intra-rack target whose entries still
  // stand because the flag landed outside the churn-delta flow — is bit-identical at 1, 2,
  // and 8 threads. FatTree(6): 3 servers per rack, 2 pingers, so non-pinger targets exist.
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 47;  // odd budget => nonzero remainder when split

  std::vector<DetectorSystem::WindowResult> results;
  for (const size_t threads : {1u, 2u, 8u}) {
    DetectorSystemOptions opts = options;
    opts.probe_threads = threads;
    DetectorSystem system(routing, opts);

    // Flag a target directly (no topology delta): its intra-rack entries stay in the
    // standing pinglists and the probe-time skip + budget redistribution kick in.
    NodeId victim = kInvalidNode;
    for (const Pinglist& list : system.pinglists()) {
      for (const PinglistEntry& entry : list.entries) {
        if (entry.path_id == PinglistEntry::kIntraRackPath) {
          victim = entry.target_server;
        }
      }
    }
    ASSERT_NE(victim, kInvalidNode);
    system.watchdog().MarkDown(victim);

    FailureScenario scenario;
    LinkFailure f;
    f.link = ft.AggCoreLink(1, 0, 1);
    f.type = FailureType::kRandomPartial;
    f.loss_rate = 0.1;
    scenario.failures.push_back(f);

    Rng rng(2024);
    results.push_back(system.RunWindow(scenario, rng));
    EXPECT_GT(results.back().probes_sent, 0);
  }
  ExpectIdenticalAtThreads(results[0], results[1], 2);
  ExpectIdenticalAtThreads(results[0], results[2], 8);
}

TEST(ObservationStore, StreamsMergesAndFilters) {
  const FatTree ft(4);
  Watchdog wd(ft.topology());
  ObservationStore store;
  store.EnsureSlots(4);

  ObservationStore::Shard& s1 = store.OpenShard(ft.Server(0, 0, 0));
  ObservationStore::Shard& s2 = store.OpenShard(ft.Server(0, 0, 1));
  s1.RecordPath(0, ft.Server(1, 0, 0), 100, 10);
  s2.RecordPath(0, ft.Server(1, 0, 0), 100, 8);  // replica of the same slot
  s2.RecordPath(2, ft.Server(1, 0, 1), 50, 0);
  s1.RecordIntraRack(ft.Server(0, 0, 1), 30, 15);

  const ObservationView view = store.Snapshot(4, wd);
  ASSERT_EQ(view.size(), 4u);
  EXPECT_EQ(view[0].sent, 200);  // replicas summed
  EXPECT_EQ(view[0].lost, 18);
  EXPECT_EQ(view[1].sent, 0);
  EXPECT_EQ(view[2].sent, 50);
  ASSERT_EQ(store.IntraRackObservations(wd).size(), 1u);

  // Watchdog filtering: a flagged pinger's whole shard and a flagged target's records vanish.
  wd.MarkDown(ft.Server(0, 0, 0));
  const ObservationView filtered = store.Snapshot(4, wd);
  EXPECT_EQ(filtered[0].sent, 100);  // only the healthy replica remains
  EXPECT_TRUE(store.IntraRackObservations(wd).empty());
  wd.MarkUp(ft.Server(0, 0, 0));
  wd.MarkDown(ft.Server(1, 0, 1));  // target of slot 2
  EXPECT_EQ(store.Snapshot(4, wd)[2].sent, 0);
}

TEST(ObservationStore, InvalidationOrphansOnlyOldEpoch) {
  const FatTree ft(4);
  const Watchdog wd(ft.topology());
  ObservationStore store;
  store.EnsureSlots(3);
  ObservationStore::Shard& shard = store.OpenShard(ft.Server(0, 0, 0));
  shard.RecordPath(1, ft.Server(1, 0, 0), 100, 40);
  shard.RecordPath(2, ft.Server(2, 0, 0), 100, 1);

  // Mid-window: slot 1 is vacated by repair; its buffered counters must not survive...
  const std::vector<PathId> vacated = {1};
  store.InvalidateSlots(vacated);
  EXPECT_EQ(store.Snapshot(3, wd)[1].sent, 0);
  EXPECT_EQ(store.Snapshot(3, wd)[2].sent, 100);  // untouched slot unaffected

  // ...but the slot's new occupant accumulates normally under the fresh epoch, including
  // records streamed by a different pinger after redispatch.
  ObservationStore::Shard& other = store.OpenShard(ft.Server(0, 1, 0));
  other.RecordPath(1, ft.Server(3, 0, 0), 60, 6);
  EXPECT_EQ(store.Snapshot(3, wd)[1].sent, 60);
  EXPECT_EQ(store.Snapshot(3, wd)[1].lost, 6);

  // A second invalidation of the same slot orphans the new occupant too.
  store.InvalidateSlots(vacated);
  EXPECT_EQ(store.Snapshot(3, wd)[1].sent, 0);

  store.Clear();
  EXPECT_EQ(store.num_shards(), 0u);
  EXPECT_EQ(store.Snapshot(3, wd)[2].sent, 0);
}

TEST(ObservationStore, MidWindowInvalidationFlowsThroughDiagnose) {
  // End-to-end shape of RunWindowWithChurn: segment 1 reports on a slot, churn vacates it,
  // segment 2 reports on the slot's new occupant; Diagnose must see only the new counters.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  const Watchdog wd(ft.topology());
  Diagnoser diagnoser;

  PingerWindowResult seg1;
  seg1.pinger = ft.Server(0, 0, 0);
  seg1.reports.push_back(PathReport{0, ft.Server(1, 0, 0), 200, 200});
  diagnoser.Ingest(seg1);

  const std::vector<PathId> vacated = {0};
  diagnoser.DropReports(vacated);

  PingerWindowResult seg2;
  seg2.pinger = ft.Server(0, 0, 0);
  seg2.reports.push_back(PathReport{0, ft.Server(1, 0, 0), 100, 0});
  diagnoser.Ingest(seg2);

  const Observations obs = diagnoser.AggregatedObservations(matrix, wd);
  EXPECT_EQ(obs[0].sent, 100);
  EXPECT_EQ(obs[0].lost, 0);
  // The stale 100%-loss counters are gone: nothing to localize.
  const LocalizeResult result = diagnoser.Diagnose(matrix, wd);
  EXPECT_TRUE(result.links.empty());
}

}  // namespace
}  // namespace detector
