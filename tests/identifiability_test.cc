// Tests for the identifiability verifier on hand-built matrices with known properties,
// including the paper's Fig. 3 example.
#include <gtest/gtest.h>

#include "src/pmc/identifiability.h"
#include "src/pmc/probe_matrix.h"
#include "src/topo/topology.h"

namespace detector {
namespace {

// A toy topology with `n` monitored links in a chain, so LinkIds are 0..n-1.
struct ToyNet {
  Topology topo{"toy"};
  std::vector<LinkId> links;

  explicit ToyNet(int n) {
    std::vector<NodeId> nodes;
    for (int i = 0; i <= n; ++i) {
      nodes.push_back(topo.AddNode(NodeKind::kTor, 0, i, "n" + std::to_string(i)));
    }
    for (int i = 0; i < n; ++i) {
      links.push_back(topo.AddLink(nodes[static_cast<size_t>(i)],
                                   nodes[static_cast<size_t>(i) + 1], 1));
    }
  }

  ProbeMatrix Matrix(const std::vector<std::vector<LinkId>>& paths) {
    PathStore store;
    for (const auto& p : paths) {
      store.Add(0, 1, p);
    }
    return ProbeMatrix(std::move(store), LinkIndex::ForMonitored(topo));
  }
};

TEST(Identifiability, PaperFigure3Example) {
  // R from Fig. 3: p1 = {l1, l2}, p2 = {l1, l3}, p3 = {l3}. Selecting p1 and p2 only gives
  // 1-identifiability but not 2 (the paper's worked example).
  ToyNet net(3);
  ProbeMatrix two_paths = net.Matrix({{0, 1}, {0, 2}});
  auto report = VerifyIdentifiability(two_paths, 2);
  EXPECT_TRUE(report.covered);
  EXPECT_EQ(report.achieved_beta, 1);
  EXPECT_FALSE(report.counterexample.empty());
}

TEST(Identifiability, UncoveredLinkFailsLevelZero) {
  ToyNet net(3);
  ProbeMatrix matrix = net.Matrix({{0, 1}});  // link 2 uncovered
  auto report = VerifyIdentifiability(matrix, 1);
  EXPECT_FALSE(report.covered);
  EXPECT_EQ(report.achieved_beta, 0);
}

TEST(Identifiability, DuplicateColumnsFailLevelOne) {
  ToyNet net(2);
  // Both links always appear together: indistinguishable.
  ProbeMatrix matrix = net.Matrix({{0, 1}, {0, 1}});
  auto report = VerifyIdentifiability(matrix, 1);
  EXPECT_TRUE(report.covered);
  EXPECT_EQ(report.achieved_beta, 0);
  EXPECT_FALSE(report.counterexample.empty());
}

TEST(Identifiability, DiagonalMatrixIsFullyIdentifiable) {
  ToyNet net(4);
  // One dedicated path per link: every failure set has a unique union.
  ProbeMatrix matrix = net.Matrix({{0}, {1}, {2}, {3}});
  auto report = VerifyIdentifiability(matrix, 3);
  EXPECT_TRUE(report.covered);
  EXPECT_EQ(report.achieved_beta, 3);
  EXPECT_TRUE(report.counterexample.empty());
}

TEST(Identifiability, SubsetSignatureBreaksLevelTwo) {
  ToyNet net(2);
  // sig(0) = {p0, p1}, sig(1) = {p1}: singles distinct, but {0} and {0,1} give the same union.
  ProbeMatrix matrix = net.Matrix({{0}, {0, 1}});
  auto report = VerifyIdentifiability(matrix, 2);
  EXPECT_EQ(report.achieved_beta, 1);
}

TEST(Identifiability, SamplingKicksInAboveBudget) {
  ToyNet net(12);
  std::vector<std::vector<LinkId>> paths;
  for (LinkId l = 0; l < 12; ++l) {
    paths.push_back({l});
  }
  ProbeMatrix matrix = net.Matrix(paths);
  // C(12,2) = 66 > 10: the checker must switch to sampling and still pass.
  auto report = VerifyIdentifiability(matrix, 2, /*max_combos=*/10);
  EXPECT_TRUE(report.sampled);
  EXPECT_EQ(report.achieved_beta, 2);
}

}  // namespace
}  // namespace detector
