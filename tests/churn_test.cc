// Churn-pipeline tests: link-state overlay semantics, path invalidation, incremental
// probe-matrix repair (including incremental/full equivalence after delta sequences), churn
// trace generation, pinglist delta dispatch with versioning, and the end-to-end
// ApplyTopologyDelta / RunWindowWithChurn flow.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "src/detector/system.h"
#include "src/pmc/identifiability.h"
#include "src/pmc/incremental.h"
#include "src/routing/bcube_routing.h"
#include "src/routing/fattree_routing.h"
#include "src/routing/path_liveness.h"
#include "src/sim/churn.h"
#include "src/topo/bcube.h"
#include "src/topo/delta.h"
#include "src/topo/fattree.h"

namespace detector {
namespace {

TEST(LinkStateOverlay, EffectiveTransitionsAndVersioning) {
  const FatTree ft(4);
  const Topology& topo = ft.topology();
  LinkStateOverlay overlay(topo);
  const LinkId link = ft.EdgeAggLink(0, 0, 0);

  auto effect = overlay.Apply(TopologyDelta::LinkDown(link));
  EXPECT_EQ(effect.now_dead, (std::vector<LinkId>{link}));
  EXPECT_TRUE(effect.now_live.empty());
  EXPECT_EQ(effect.version, 1u);
  EXPECT_FALSE(overlay.IsLinkLive(link));
  EXPECT_TRUE(overlay.IsLinkFailed(link));

  // Redundant event: no transitions, no version bump.
  effect = overlay.Apply(TopologyDelta::LinkDown(link));
  EXPECT_TRUE(effect.empty());
  EXPECT_EQ(overlay.version(), 1u);

  effect = overlay.Apply(TopologyDelta::LinkUp(link));
  EXPECT_EQ(effect.now_live, (std::vector<LinkId>{link}));
  EXPECT_TRUE(overlay.IsLinkLive(link));
  EXPECT_EQ(overlay.version(), 2u);
}

TEST(LinkStateOverlay, NodeChurnTakesIncidentLinksDown) {
  const FatTree ft(4);
  const Topology& topo = ft.topology();
  LinkStateOverlay overlay(topo);
  const NodeId agg = ft.Agg(1, 0);

  const auto down = overlay.Apply(TopologyDelta::NodeDown(agg));
  EXPECT_EQ(down.now_dead.size(), topo.NeighborsOf(agg).size());
  for (const Neighbor& nb : topo.NeighborsOf(agg)) {
    EXPECT_FALSE(overlay.IsLinkLive(nb.link));
  }

  // A link event on a dead-node link changes nothing until the node returns.
  const LinkId l = topo.NeighborsOf(agg).front().link;
  EXPECT_TRUE(overlay.Apply(TopologyDelta::LinkUp(l)).empty());

  const auto up = overlay.Apply(TopologyDelta::NodeUp(agg));
  EXPECT_EQ(up.now_live.size(), down.now_dead.size());
  EXPECT_EQ(overlay.NumDeadLinks(), 0u);
}

TEST(LinkStateOverlay, DrainIsDeadButNotFailed) {
  const FatTree ft(4);
  LinkStateOverlay overlay(ft.topology());
  const LinkId link = ft.AggCoreLink(0, 0, 0);
  overlay.Apply(TopologyDelta::LinkDrain(link));
  EXPECT_FALSE(overlay.IsLinkLive(link));    // removed from the probe plane
  EXPECT_FALSE(overlay.IsLinkFailed(link));  // but still forwarding: no loss injection
  EXPECT_TRUE(overlay.FailedLinks().empty());
  overlay.Apply(TopologyDelta::LinkUndrain(link));
  EXPECT_TRUE(overlay.IsLinkLive(link));
}

TEST(PathLiveness, FlapInvalidationAndCompaction) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  const PathStore candidates = routing.Enumerate(PathEnumMode::kFull);
  PathLiveness liveness(candidates, ft.topology().NumLinks());
  EXPECT_EQ(liveness.NumAlive(), candidates.size());

  const LinkId link = ft.AggCoreLink(0, 0, 0);
  const size_t through = liveness.PathsThrough(link).size();
  EXPECT_GT(through, 0u);
  liveness.LinkDown(link);
  EXPECT_EQ(liveness.NumAlive(), candidates.size() - through);
  for (const PathId p : liveness.PathsThrough(link)) {
    EXPECT_FALSE(liveness.IsAlive(p));
  }
  liveness.LinkDown(link);  // idempotent
  EXPECT_EQ(liveness.NumAlive(), candidates.size() - through);

  std::vector<PathId> kept;
  const PathStore compact = CompactAlive(candidates, liveness, &kept);
  EXPECT_EQ(compact.size(), liveness.NumAlive());
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(compact.src(static_cast<PathId>(i)), candidates.src(kept[i]));
    EXPECT_EQ(compact.PathLength(static_cast<PathId>(i)),
              candidates.PathLength(kept[i]));
  }

  liveness.LinkUp(link);
  EXPECT_EQ(liveness.NumAlive(), candidates.size());
}

// Recomputes per-link selected-path counts from scratch and cross-checks the incremental
// weights, the alpha invariant on live links, and that no selected path crosses a dead link.
void CheckIncrementalInvariants(const IncrementalPmc& inc, const LinkStateOverlay& overlay) {
  const Topology& topo = overlay.topology();
  std::vector<int32_t> recount(topo.NumLinks(), 0);
  for (const PathId pid : inc.SelectedCandidateIds()) {
    for (const LinkId link : inc.candidates().Links(pid)) {
      EXPECT_TRUE(overlay.IsLinkLive(link))
          << "selected path " << pid << " crosses dead link " << topo.LinkName(link);
      ++recount[static_cast<size_t>(link)];
    }
  }
  for (size_t l = 0; l < topo.NumLinks(); ++l) {
    const LinkId link = static_cast<LinkId>(l);
    if (!topo.link(link).monitored) {
      continue;
    }
    EXPECT_EQ(inc.Weight(link), recount[l]) << topo.LinkName(link);
    if (overlay.IsLinkLive(link)) {
      EXPECT_GE(inc.Weight(link), inc.options().alpha)
          << "live link undercovered: " << topo.LinkName(link);
    }
  }
}

// From-scratch rebuild on the post-churn topology: alive candidates over live monitored links.
PmcResult ScratchRebuild(const IncrementalPmc& inc, const LinkStateOverlay& overlay) {
  std::vector<PathId> kept;
  const PathStore alive = CompactAlive(inc.candidates(), inc.liveness(), &kept);
  return BuildProbeMatrixFromCandidates(
      inc.topology(), alive, inc.options(),
      LinkIndex::ForLinks(inc.topology(), overlay.LiveMonitoredLinks()));
}

TEST(IncrementalPmc, SingleLinkDeltaKeepsInvariants) {
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 2;
  options.beta = 1;
  IncrementalPmc inc(ft.topology(), routing.Enumerate(PathEnumMode::kFull), options);
  LinkStateOverlay overlay(ft.topology());
  EXPECT_TRUE(inc.initial_stats().alpha_satisfied);

  const LinkId link = ft.AggCoreLink(2, 1, 0);
  const auto outcome = inc.ApplyDelta(overlay.Apply(TopologyDelta::LinkDown(link)));
  EXPECT_GT(outcome.stats.dropped_paths, 0u);
  EXPECT_TRUE(outcome.stats.alpha_satisfied);
  EXPECT_TRUE(outcome.stats.fully_resolved);
  EXPECT_EQ(outcome.stats.touched_components, 1);  // Observation 1: repair stays in one core group
  EXPECT_EQ(outcome.removed_slots.size(), outcome.stats.dropped_paths);
  CheckIncrementalInvariants(inc, overlay);

  // The live-restricted matrix is still 1-identifiable, like a from-scratch rebuild.
  const auto report = VerifyIdentifiability(inc.BuildLiveMatrix(), 1);
  EXPECT_TRUE(report.covered);
  EXPECT_GE(report.achieved_beta, 1) << report.counterexample;

  const PmcResult scratch = ScratchRebuild(inc, overlay);
  EXPECT_EQ(outcome.stats.alpha_satisfied, scratch.stats.alpha_satisfied);
  EXPECT_EQ(outcome.stats.fully_resolved, scratch.stats.fully_resolved);
}

TEST(IncrementalPmc, DeltaSequenceMatchesScratchRebuild) {
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 1;
  IncrementalPmc inc(ft.topology(), routing.Enumerate(PathEnumMode::kFull), options);
  LinkStateOverlay overlay(ft.topology());

  // A mixed storm: failures, a drain, a switch reboot, and recoveries interleaved.
  const std::vector<TopologyDelta> sequence = {
      TopologyDelta::LinkDown(ft.AggCoreLink(0, 0, 0)),
      TopologyDelta::LinkDrain(ft.EdgeAggLink(1, 1, 2)),
      TopologyDelta::NodeDown(ft.Agg(3, 2)),
      TopologyDelta::LinkDown(ft.AggCoreLink(5, 0, 1)),
      TopologyDelta::LinkUp(ft.AggCoreLink(0, 0, 0)),
      TopologyDelta::NodeUp(ft.Agg(3, 2)),
      TopologyDelta::LinkUndrain(ft.EdgeAggLink(1, 1, 2)),
      TopologyDelta::LinkUp(ft.AggCoreLink(5, 0, 1)),
  };
  for (const TopologyDelta& delta : sequence) {
    const auto outcome = inc.ApplyDelta(overlay.Apply(delta));
    CheckIncrementalInvariants(inc, overlay);
    // Incremental repair must land exactly where a from-scratch rebuild of the post-churn
    // topology lands: same coverage verdict, same partition-resolution verdict.
    const PmcResult scratch = ScratchRebuild(inc, overlay);
    EXPECT_EQ(outcome.stats.alpha_satisfied, scratch.stats.alpha_satisfied);
    EXPECT_EQ(outcome.stats.fully_resolved, scratch.stats.fully_resolved);
    EXPECT_EQ(inc.AlphaSatisfied(), scratch.stats.alpha_satisfied);
    if (options.beta >= 1 && outcome.stats.fully_resolved) {
      const auto report = VerifyIdentifiability(inc.BuildLiveMatrix(), 1);
      EXPECT_GE(report.achieved_beta, 1) << report.counterexample;
    }
  }
  // The storm fully recovered: the overlay is clean and coverage is whole again.
  EXPECT_EQ(overlay.NumDeadLinks(), 0u);
  EXPECT_TRUE(inc.AlphaSatisfied());
}

TEST(IncrementalPmc, BcubeSingleComponentRepair) {
  const Bcube bc(4, 1);
  const BcubeRouting routing(bc);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 1;
  IncrementalPmc inc(bc.topology(), routing.Enumerate(PathEnumMode::kFull), options);
  LinkStateOverlay overlay(bc.topology());

  const LinkId victim = bc.topology().MonitoredLinks().front();
  const auto outcome = inc.ApplyDelta(overlay.Apply(TopologyDelta::LinkDown(victim)));
  EXPECT_EQ(outcome.stats.touched_components, 1);
  CheckIncrementalInvariants(inc, overlay);
  const PmcResult scratch = ScratchRebuild(inc, overlay);
  EXPECT_EQ(outcome.stats.alpha_satisfied, scratch.stats.alpha_satisfied);
  EXPECT_EQ(outcome.stats.fully_resolved, scratch.stats.fully_resolved);

  inc.ApplyDelta(overlay.Apply(TopologyDelta::LinkUp(victim)));
  CheckIncrementalInvariants(inc, overlay);
  EXPECT_TRUE(inc.AlphaSatisfied());
}

TEST(IncrementalPmc, ParallelRepairIsBitIdenticalToSerial) {
  // A maintenance wave through a ToR dirties every core-group component at once (its k/2
  // uplinks reach one agg — and so one core group — each); the parallel collect phase plus
  // the ordered slot merge must reproduce the serial repair bit-for-bit: same outcome slots,
  // same stats counters, same selection, same slot layout — at any thread count, including
  // more threads than components.
  const FatTree ft(8);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 2;
  options.beta = 1;

  const std::vector<TopologyDelta> wave = {
      TopologyDelta::NodeDown(ft.Tor(2, 1)),
      TopologyDelta::NodeDown(ft.Agg(5, 0)),
      TopologyDelta::NodeUp(ft.Tor(2, 1)),
      TopologyDelta::NodeUp(ft.Agg(5, 0)),
  };

  struct RunTrace {
    std::vector<IncrementalPmc::DeltaOutcome> outcomes;
    std::vector<PathId> slot_layout;
    std::vector<PathId> selected;
    bool alpha_satisfied = false;
  };
  auto run = [&](int threads) {
    IncrementalPmc inc(ft.topology(), routing.Enumerate(PathEnumMode::kFull), options);
    inc.set_repair_threads(threads);
    LinkStateOverlay overlay(ft.topology());
    RunTrace trace;
    bool saw_multi_component = false;
    for (const TopologyDelta& delta : wave) {
      trace.outcomes.push_back(inc.ApplyDelta(overlay.Apply(delta)));
      saw_multi_component |= trace.outcomes.back().stats.touched_components > 1;
    }
    EXPECT_TRUE(saw_multi_component) << "wave never exercised a multi-component repair";
    CheckIncrementalInvariants(inc, overlay);
    for (size_t s = 0; s < inc.NumSlots(); ++s) {
      trace.slot_layout.push_back(inc.SlotCandidate(static_cast<PathId>(s)));
    }
    trace.selected = inc.SelectedCandidateIds();
    trace.alpha_satisfied = inc.AlphaSatisfied();
    return trace;
  };

  const RunTrace serial = run(1);
  for (const int threads : {2, 4, 8}) {
    const RunTrace parallel = run(threads);
    ASSERT_EQ(serial.outcomes.size(), parallel.outcomes.size());
    for (size_t i = 0; i < serial.outcomes.size(); ++i) {
      const auto& a = serial.outcomes[i];
      const auto& b = parallel.outcomes[i];
      EXPECT_EQ(a.removed_slots, b.removed_slots) << "threads=" << threads << " delta " << i;
      EXPECT_EQ(a.added_slots, b.added_slots) << "threads=" << threads << " delta " << i;
      EXPECT_EQ(a.stats.dropped_paths, b.stats.dropped_paths);
      EXPECT_EQ(a.stats.added_paths, b.stats.added_paths);
      EXPECT_EQ(a.stats.repaired_links, b.stats.repaired_links);
      EXPECT_EQ(a.stats.pool_candidates, b.stats.pool_candidates);
      EXPECT_EQ(a.stats.score_evaluations, b.stats.score_evaluations);
      EXPECT_EQ(a.stats.touched_components, b.stats.touched_components);
      EXPECT_EQ(a.stats.uncoverable_live_links, b.stats.uncoverable_live_links);
      EXPECT_EQ(a.stats.alpha_satisfied, b.stats.alpha_satisfied);
      EXPECT_EQ(a.stats.fully_resolved, b.stats.fully_resolved);
    }
    EXPECT_EQ(serial.slot_layout, parallel.slot_layout) << "threads=" << threads;
    EXPECT_EQ(serial.selected, parallel.selected) << "threads=" << threads;
    EXPECT_EQ(serial.alpha_satisfied, parallel.alpha_satisfied);
  }
}

TEST(IncrementalPmc, SlotsAreStableAcrossDeltas) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions options;
  options.alpha = 1;
  options.beta = 1;
  IncrementalPmc inc(ft.topology(), routing.Enumerate(PathEnumMode::kFull), options);
  LinkStateOverlay overlay(ft.topology());

  // Record the candidate occupying every slot, knock a link out, and verify untouched slots
  // still hold the same candidate (pinglist entries keyed by slot id stay valid).
  std::vector<PathId> before(inc.NumSlots());
  for (size_t s = 0; s < inc.NumSlots(); ++s) {
    before[s] = inc.SlotCandidate(static_cast<PathId>(s));
  }
  const auto outcome =
      inc.ApplyDelta(overlay.Apply(TopologyDelta::LinkDown(ft.AggCoreLink(0, 0, 0))));
  const std::set<PathId> removed(outcome.removed_slots.begin(), outcome.removed_slots.end());
  const std::set<PathId> added(outcome.added_slots.begin(), outcome.added_slots.end());
  for (size_t s = 0; s < before.size(); ++s) {
    const PathId slot = static_cast<PathId>(s);
    if (removed.count(slot) == 0 && added.count(slot) == 0) {
      EXPECT_EQ(inc.SlotCandidate(slot), before[s]) << "slot " << s;
    }
  }
  // Vacated slots are reused before the matrix grows.
  EXPECT_LE(inc.NumSlots(), before.size() + outcome.added_slots.size());
}

TEST(ChurnGenerator, TracesAreSortedPairedAndDeterministic) {
  const FatTree ft(4);
  ChurnOptions options;
  options.link_events_per_minute = 30.0;
  options.node_events_per_minute = 5.0;
  options.drain_fraction = 0.3;
  options.mean_outage_seconds = 10.0;
  const ChurnGenerator gen(ft.topology(), options);

  Rng rng(42);
  const auto events = gen.Sample(120.0, rng);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.size() % 2, 0u);  // every outage carries its recovery
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time_seconds, events[i].time_seconds);
  }

  // Applying the full trace restores the overlay exactly.
  LinkStateOverlay overlay(ft.topology());
  int downs = 0;
  int drains = 0;
  for (const ChurnEvent& event : events) {
    for (const LinkChurn& lc : event.delta.links) {
      downs += lc.action == ChurnAction::kDown ? 1 : 0;
      drains += lc.action == ChurnAction::kDrain ? 1 : 0;
    }
    overlay.Apply(event.delta);
  }
  EXPECT_GT(downs, 0);
  EXPECT_GT(drains, 0);
  EXPECT_EQ(overlay.NumDeadLinks(), 0u);

  Rng rng2(42);
  const auto replay = gen.Sample(120.0, rng2);
  ASSERT_EQ(replay.size(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_DOUBLE_EQ(replay[i].time_seconds, events[i].time_seconds);
  }
}

TEST(ChurnGenerator, PerLinkOutagesNeverOverlap) {
  // Replaying a trace through the boolean overlay truncates overlapping same-link outages, so
  // the generator must never emit them.
  const FatTree ft(4);
  ChurnOptions options;
  options.link_events_per_minute = 120.0;  // dense enough to collide without the guard
  options.node_events_per_minute = 0.0;
  options.drain_fraction = 0.0;
  options.mean_outage_seconds = 30.0;
  const ChurnGenerator gen(ft.topology(), options);
  Rng rng(7);
  const auto events = gen.Sample(300.0, rng);
  ASSERT_FALSE(events.empty());

  std::map<LinkId, std::vector<std::pair<double, double>>> outages;  // link -> [down, up)
  std::map<LinkId, double> open;
  for (const ChurnEvent& event : events) {
    for (const LinkChurn& lc : event.delta.links) {
      if (lc.action == ChurnAction::kDown) {
        ASSERT_EQ(open.count(lc.link), 0u) << "overlapping outage on link " << lc.link;
        open[lc.link] = event.time_seconds;
      } else {
        auto it = open.find(lc.link);
        ASSERT_NE(it, open.end());
        outages[lc.link].emplace_back(it->second, event.time_seconds);
        open.erase(it);
      }
    }
  }
  EXPECT_TRUE(open.empty());
  for (const auto& [link, intervals] : outages) {
    for (size_t i = 1; i < intervals.size(); ++i) {
      EXPECT_GE(intervals[i].first, intervals[i - 1].second) << "link " << link;
    }
  }
}

TEST(Diagnoser, DropReportsDiscardsBufferedPaths) {
  const FatTree ft(4);
  Diagnoser diagnoser;
  PingerWindowResult window;
  window.pinger = ft.Server(0, 0, 0);
  window.reports.push_back(PathReport{3, ft.Server(1, 0, 0), 100, 40});
  window.reports.push_back(PathReport{5, ft.Server(2, 0, 0), 100, 0});
  window.reports.push_back(
      PathReport{PinglistEntry::kIntraRackPath, ft.Server(0, 0, 1), 100, 10});
  diagnoser.Ingest(window);

  const std::vector<PathId> dropped = {3};
  diagnoser.DropReports(dropped);

  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  const ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  Watchdog wd(ft.topology());
  const Observations obs = diagnoser.AggregatedObservations(matrix, wd);
  EXPECT_EQ(obs[3].sent, 0);  // dropped path's stale report is gone
  EXPECT_EQ(obs[5].sent, 100);
  // Intra-rack reports (negative path ids) are untouched.
  EXPECT_EQ(diagnoser.ServerLinkAlarms(wd).size(), 1u);
}

class PinglistUpdateTest : public ::testing::Test {
 protected:
  PinglistUpdateTest() : ft_(4), routing_(ft_), watchdog_(ft_.topology()) {
    PmcOptions pmc;
    pmc.alpha = 1;
    pmc.beta = 1;
    matrix_ = BuildProbeMatrix(routing_, PathEnumMode::kFull, pmc).matrix;
  }

  FatTree ft_;
  FatTreeRouting routing_;
  Watchdog watchdog_;
  ProbeMatrix matrix_;
};

TEST_F(PinglistUpdateTest, MinimalDiffWithVersionBump) {
  Controller controller(ft_.topology(), ControllerOptions{});
  std::vector<Pinglist> lists = controller.BuildPinglists(matrix_, watchdog_);
  for (const Pinglist& list : lists) {
    EXPECT_EQ(list.version, 1);
  }

  // Remove one path: only its pingers' lists change, each bumped to version 2.
  const PathId victim = 0;
  std::set<NodeId> expected_touched;
  NodeId victim_target = kInvalidNode;
  for (const Pinglist& list : lists) {
    for (const PinglistEntry& entry : list.entries) {
      if (entry.path_id == victim) {
        expected_touched.insert(list.pinger);
        victim_target = entry.target_server;  // replicas share the path's responder
      }
    }
  }
  ASSERT_FALSE(expected_touched.empty());

  const std::vector<PathId> removed = {victim};
  const PinglistUpdate update =
      controller.UpdatePinglists(lists, matrix_, watchdog_, removed, {});
  EXPECT_EQ(update.lists_touched, expected_touched.size());
  EXPECT_EQ(update.entries_removed, expected_touched.size());  // one replica per pinger
  EXPECT_EQ(update.entries_added, 0u);
  for (const PinglistDiff& diff : update.diffs) {
    EXPECT_TRUE(expected_touched.count(diff.pinger) > 0);
    EXPECT_EQ(diff.version, 2);
    // Removals carry the full (path, target) key of the entry they drop.
    EXPECT_EQ(diff.removed, (std::vector<PinglistRemoval>{{victim, victim_target}}));
  }
  for (const Pinglist& list : lists) {
    const bool touched = expected_touched.count(list.pinger) > 0;
    EXPECT_EQ(list.version, touched ? 2 : 1);
    for (const PinglistEntry& entry : list.entries) {
      EXPECT_NE(entry.path_id, victim);
    }
  }

  // Add it back: the entries return to the same pingers (deterministic assignment), bumping
  // exactly those lists to version 3.
  const PinglistUpdate re_add =
      controller.UpdatePinglists(lists, matrix_, watchdog_, {}, removed);
  EXPECT_EQ(re_add.lists_touched, expected_touched.size());
  EXPECT_EQ(re_add.entries_added, expected_touched.size());
  for (const PinglistDiff& diff : re_add.diffs) {
    EXPECT_EQ(diff.version, 3);
    ASSERT_EQ(diff.added.size(), 1u);
    EXPECT_EQ(diff.added[0].path_id, victim);
  }
}

TEST_F(PinglistUpdateTest, DiffXmlRoundTrip) {
  Controller controller(ft_.topology(), ControllerOptions{});
  std::vector<Pinglist> lists = controller.BuildPinglists(matrix_, watchdog_);

  // A mixed diff: remove two paths, re-add one — both removal and probe elements on the wire.
  const std::vector<PathId> removed = {0, 1};
  controller.UpdatePinglists(lists, matrix_, watchdog_, removed, {});
  const std::vector<PathId> re_added = {0};
  const PinglistUpdate update =
      controller.UpdatePinglists(lists, matrix_, watchdog_, {}, re_added);
  ASSERT_FALSE(update.diffs.empty());

  for (const PinglistDiff& diff : update.diffs) {
    const PinglistDiff parsed = PinglistDiff::FromXml(diff.ToXml());
    EXPECT_EQ(parsed.pinger, diff.pinger);
    EXPECT_EQ(parsed.version, diff.version);
    EXPECT_EQ(parsed.removed, diff.removed);
    ASSERT_EQ(parsed.added.size(), diff.added.size());
    for (size_t i = 0; i < diff.added.size(); ++i) {
      EXPECT_EQ(parsed.added[i].path_id, diff.added[i].path_id);
      EXPECT_EQ(parsed.added[i].target_server, diff.added[i].target_server);
      EXPECT_EQ(parsed.added[i].route, diff.added[i].route);
    }
  }

  // An empty-removal, empty-addition diff would not be emitted; a removal-only one must still
  // round-trip (no <probe> children).
  const PinglistUpdate removal_only =
      controller.UpdatePinglists(lists, matrix_, watchdog_, re_added, {});
  ASSERT_FALSE(removal_only.diffs.empty());
  const PinglistDiff parsed = PinglistDiff::FromXml(removal_only.diffs[0].ToXml());
  EXPECT_EQ(parsed.removed, removal_only.diffs[0].removed);
  EXPECT_TRUE(parsed.added.empty());
}

TEST_F(PinglistUpdateTest, IndexedDispatchMatchesBlindScan) {
  Controller controller(ft_.topology(), ControllerOptions{});
  std::vector<Pinglist> blind = controller.BuildPinglists(matrix_, watchdog_);
  std::vector<Pinglist> indexed = blind;
  PathPingerIndex index = PathPingerIndex::Build(indexed);
  EXPECT_EQ(index.NumIndexedPaths(), matrix_.NumPaths());

  auto expect_same = [&](const PinglistUpdate& a, const PinglistUpdate& b) {
    EXPECT_EQ(a.lists_touched, b.lists_touched);
    EXPECT_EQ(a.entries_removed, b.entries_removed);
    EXPECT_EQ(a.entries_added, b.entries_added);
    ASSERT_EQ(a.diffs.size(), b.diffs.size());
    for (size_t i = 0; i < a.diffs.size(); ++i) {
      EXPECT_EQ(a.diffs[i].pinger, b.diffs[i].pinger);
      EXPECT_EQ(a.diffs[i].version, b.diffs[i].version);
      EXPECT_EQ(a.diffs[i].removed, b.diffs[i].removed);
      EXPECT_EQ(a.diffs[i].added.size(), b.diffs[i].added.size());
    }
    ASSERT_EQ(blind.size(), indexed.size());
    for (size_t i = 0; i < blind.size(); ++i) {
      EXPECT_EQ(blind[i].pinger, indexed[i].pinger);
      EXPECT_EQ(blind[i].version, indexed[i].version);
      ASSERT_EQ(blind[i].entries.size(), indexed[i].entries.size());
      for (size_t e = 0; e < blind[i].entries.size(); ++e) {
        EXPECT_EQ(blind[i].entries[e].path_id, indexed[i].entries[e].path_id);
        EXPECT_EQ(blind[i].entries[e].target_server, indexed[i].entries[e].target_server);
      }
    }
  };

  // Removal, re-addition, and a mixed delta — the indexed dispatch must land on identical
  // lists and diffs while keeping the index current across calls.
  const std::vector<PathId> batch = {0, 3, 7};
  expect_same(controller.UpdatePinglists(blind, matrix_, watchdog_, batch, {}),
              controller.UpdatePinglists(indexed, matrix_, watchdog_, batch, {}, {}, {}, &index));
  for (const PathId pid : batch) {
    EXPECT_TRUE(index.PingersOf(pid).empty());
  }
  const std::vector<PathId> back = {0, 3};
  expect_same(controller.UpdatePinglists(blind, matrix_, watchdog_, {}, back),
              controller.UpdatePinglists(indexed, matrix_, watchdog_, {}, back, {}, {}, &index));
  // A repair-shaped mixed delta: one standing slot vacated, one absent slot re-selected.
  const std::vector<PathId> removed_again = {0};
  const std::vector<PathId> added_again = {7};
  expect_same(
      controller.UpdatePinglists(blind, matrix_, watchdog_, removed_again, added_again),
      controller.UpdatePinglists(indexed, matrix_, watchdog_, removed_again, added_again, {},
                                 {}, &index));
  EXPECT_EQ(index.NumIndexedPaths(), matrix_.NumPaths() - 1);  // path 0 still out
}

TEST_F(PinglistUpdateTest, EmptyDeltaTouchesNothing) {
  Controller controller(ft_.topology(), ControllerOptions{});
  std::vector<Pinglist> lists = controller.BuildPinglists(matrix_, watchdog_);
  const PinglistUpdate update = controller.UpdatePinglists(lists, matrix_, watchdog_, {}, {});
  EXPECT_TRUE(update.diffs.empty());
  for (const Pinglist& list : lists) {
    EXPECT_EQ(list.version, 1);
  }
}

TEST_F(PinglistUpdateTest, UpdatedPinglistXmlRoundTripWithIntraRack) {
  ControllerOptions options;
  options.intra_rack_probes = true;
  Controller controller(ft_.topology(), options);
  std::vector<Pinglist> lists = controller.BuildPinglists(matrix_, watchdog_);
  const std::vector<PathId> removed_one = {0};
  controller.UpdatePinglists(lists, matrix_, watchdog_, removed_one, {});

  // Round-trip a post-update pinglist that still carries intra-rack entries: the bumped
  // version and every entry (including kIntraRackPath markers) must survive serialization.
  bool checked = false;
  for (const Pinglist& list : lists) {
    const bool has_intra_rack =
        std::any_of(list.entries.begin(), list.entries.end(), [](const PinglistEntry& e) {
          return e.path_id == PinglistEntry::kIntraRackPath;
        });
    if (!has_intra_rack || list.version != 2) {
      continue;
    }
    const Pinglist parsed = Pinglist::FromXml(list.ToXml());
    EXPECT_EQ(parsed.version, list.version);
    EXPECT_EQ(parsed.pinger, list.pinger);
    ASSERT_EQ(parsed.entries.size(), list.entries.size());
    for (size_t i = 0; i < list.entries.size(); ++i) {
      EXPECT_EQ(parsed.entries[i].path_id, list.entries[i].path_id);
      EXPECT_EQ(parsed.entries[i].target_server, list.entries[i].target_server);
      EXPECT_EQ(parsed.entries[i].route, list.entries[i].route);
    }
    checked = true;
    break;
  }
  EXPECT_TRUE(checked) << "no updated pinglist with intra-rack entries found";
}

TEST(DetectorSystemChurn, ApplyTopologyDeltaRoutesAroundDeadLink) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;  // plenty of samples in one window
  DetectorSystem system(routing, options);

  const LinkId victim = ft.AggCoreLink(0, 0, 0);
  const auto result = system.ApplyTopologyDelta(TopologyDelta::LinkDown(victim));
  EXPECT_EQ(result.links_gone_dead, 1u);
  EXPECT_TRUE(result.repair.alpha_satisfied);
  EXPECT_GT(result.pinglists_touched, 0u);
  EXPECT_GT(result.entries_removed, 0u);
  EXPECT_FALSE(result.diffs.empty());

  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      EXPECT_EQ(std::count(entry.route.begin(), entry.route.end(), victim), 0)
          << "pinglist still routes over the dead link";
    }
  }

  // The system still detects and localizes an unrelated failure end to end.
  FailureScenario scenario;
  LinkFailure f;
  f.link = ft.AggCoreLink(1, 1, 1);
  f.type = FailureType::kFullLoss;
  scenario.failures.push_back(f);
  Rng rng(9);
  const auto window = system.RunWindow(scenario, rng);
  ASSERT_GE(window.localization.links.size(), 1u);
  EXPECT_EQ(window.localization.links[0].link, f.link);
}

TEST(DetectorSystemChurn, DeltaThenRecoveryRestoresPinglists) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);
  const size_t baseline_entries = [&] {
    size_t n = 0;
    for (const Pinglist& list : system.pinglists()) {
      n += list.entries.size();
    }
    return n;
  }();

  const LinkId victim = ft.EdgeAggLink(2, 0, 1);
  system.ApplyTopologyDelta(TopologyDelta::LinkDown(victim));
  const auto recovery = system.ApplyTopologyDelta(TopologyDelta::LinkUp(victim));
  EXPECT_EQ(recovery.links_back_live, 1u);
  EXPECT_TRUE(recovery.repair.alpha_satisfied);
  size_t entries = 0;
  for (const Pinglist& list : system.pinglists()) {
    entries += list.entries.size();
  }
  // Coverage is restored with a comparable probing budget (selection may differ slightly).
  EXPECT_GE(entries * 10, baseline_entries * 9);
}

TEST(DetectorSystemChurn, ServerChurnMovesEntriesOffDownedPinger) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);
  const NodeId down = system.pinglists().front().pinger;

  const auto result = system.ApplyTopologyDelta(TopologyDelta::NodeDown(down));
  EXPECT_GT(result.entries_removed, 0u);
  EXPECT_FALSE(system.watchdog().IsHealthy(down));
  // Redispatch moves entries, but the paths keep their matrix slots: buffered observations
  // for them stay valid, so nothing is marked stale.
  EXPECT_TRUE(result.slots_vacated.empty());
  for (const Pinglist& list : system.pinglists()) {
    if (list.pinger == down) {
      for (const PinglistEntry& entry : list.entries) {
        EXPECT_EQ(entry.path_id, PinglistEntry::kIntraRackPath);
      }
      continue;
    }
    for (const PinglistEntry& entry : list.entries) {
      // No entry of any kind — matrix or intra-rack — may still target the downed server
      // once the delta has dispatched: matrix entries are redispatched, intra-rack entries
      // are removed outright (keyed by (path, target) in the diffs).
      EXPECT_NE(entry.target_server, down);
    }
  }
}

TEST(DetectorSystemChurn, StaleIntraRackEntriesRemovedAndRestored) {
  // ROADMAP open item 1, second half: a downed server's intra-rack entries must leave the
  // standing pinglists with the delta that downed it — not age out at the next full rebuild —
  // and return when it recovers. FatTree(6) has 3 servers per rack with 2 pingers, so
  // non-pinger intra-rack targets exist.
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);

  // Pick a server that is an intra-rack target but not a pinger, so the delta's only work is
  // the intra-rack withdrawal (no matrix redispatch noise).
  NodeId victim = kInvalidNode;
  NodeId victim_pinger = kInvalidNode;
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      if (entry.path_id != PinglistEntry::kIntraRackPath) {
        continue;
      }
      bool is_pinger = false;
      for (const Pinglist& other : system.pinglists()) {
        is_pinger |= other.pinger == entry.target_server && !other.entries.empty();
      }
      if (!is_pinger) {
        victim = entry.target_server;
        victim_pinger = list.pinger;
      }
    }
  }
  ASSERT_NE(victim, kInvalidNode);

  const auto down = system.ApplyTopologyDelta(TopologyDelta::NodeDown(victim));
  EXPECT_GT(down.entries_removed, 0u);
  // The diff names the withdrawn entry by its (kIntraRackPath, target) key.
  bool removal_diffed = false;
  for (const PinglistDiff& diff : down.diffs) {
    for (const PinglistRemoval& removal : diff.removed) {
      if (removal.path == PinglistEntry::kIntraRackPath && removal.target == victim) {
        removal_diffed = true;
        EXPECT_EQ(diff.pinger, victim_pinger);
      }
    }
  }
  EXPECT_TRUE(removal_diffed);
  // The gate: no standing pinglist entry targets the downed server once the delta dispatched.
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      EXPECT_NE(entry.target_server, victim);
    }
  }

  // Recovery restores the entry (same deterministic pinger choice), exactly once.
  const auto up = system.ApplyTopologyDelta(TopologyDelta::NodeUp(victim));
  EXPECT_GT(up.entries_added, 0u);
  bool readd_diffed = false;
  for (const PinglistDiff& diff : up.diffs) {
    for (const PinglistEntry& entry : diff.added) {
      readd_diffed |= entry.path_id == PinglistEntry::kIntraRackPath &&
                      entry.target_server == victim;
    }
  }
  EXPECT_TRUE(readd_diffed);
  int standing = 0;
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      if (entry.path_id == PinglistEntry::kIntraRackPath && entry.target_server == victim) {
        ++standing;
        EXPECT_EQ(list.pinger, victim_pinger);
        ASSERT_EQ(entry.route.size(), 2u);
      }
    }
  }
  EXPECT_EQ(standing, 1);

  // A repeated down delta has nothing left to withdraw; a repeated up adds no duplicate.
  system.ApplyTopologyDelta(TopologyDelta::NodeDown(victim));
  const auto re_down = system.ApplyTopologyDelta(TopologyDelta::NodeDown(victim));
  EXPECT_EQ(re_down.entries_removed, 0u);
  system.ApplyTopologyDelta(TopologyDelta::NodeUp(victim));
  const auto re_up = system.ApplyTopologyDelta(TopologyDelta::NodeUp(victim));
  EXPECT_EQ(re_up.entries_added, 0u);
}

TEST(DetectorSystemChurn, DeltaConfirmsOutOfBandWatchdogFlag) {
  // The watchdog can flag a server before any topology delta names it (health telemetry —
  // the flow the pinger-side probe-time skip exists for). The delta that later confirms the
  // failure must still do the full dispatch: redispatch matrix entries off the dead endpoint
  // and withdraw the intra-rack entries towards it, exactly as if the flag were fresh.
  const FatTree ft(6);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);

  NodeId victim = kInvalidNode;
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      if (entry.path_id == PinglistEntry::kIntraRackPath) {
        victim = entry.target_server;
      }
    }
  }
  ASSERT_NE(victim, kInvalidNode);

  system.watchdog().MarkDown(victim);  // out-of-band: no delta dispatched yet
  size_t standing_before = 0;
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      standing_before += entry.target_server == victim ? 1 : 0;
    }
  }
  EXPECT_GT(standing_before, 0u);  // the flag alone moves nothing

  const auto result = system.ApplyTopologyDelta(TopologyDelta::NodeDown(victim));
  EXPECT_GT(result.entries_removed, 0u);
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      EXPECT_NE(entry.target_server, victim);
    }
  }
}

TEST(DetectorSystemChurn, RecomputeCycleRespectsOverlay) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);

  const LinkId victim = ft.AggCoreLink(1, 0, 0);
  system.ApplyTopologyDelta(TopologyDelta::LinkDown(victim));
  system.RecomputeCycle();
  EXPECT_TRUE(system.pmc_stats().alpha_satisfied);  // rebuilt over live links only
  const ProbeMatrix& matrix = system.probe_matrix();
  for (size_t p = 0; p < matrix.NumPaths(); ++p) {
    const auto links = matrix.paths().Links(static_cast<PathId>(p));
    EXPECT_EQ(std::count(links.begin(), links.end(), victim), 0);
  }
}

TEST(DetectorSystemChurn, RecomputeCycleKeepsVersionsMonotonic) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);

  // Churn bumps some lists past 1; the rebuild must move every pinger strictly forward.
  system.ApplyTopologyDelta(TopologyDelta::LinkDown(ft.AggCoreLink(0, 0, 0)));
  std::map<NodeId, int> before;
  for (const Pinglist& list : system.pinglists()) {
    before[list.pinger] = list.version;
  }
  system.RecomputeCycle();
  for (const Pinglist& list : system.pinglists()) {
    const auto it = before.find(list.pinger);
    if (it != before.end()) {
      EXPECT_GT(list.version, it->second) << "pinger " << list.pinger;
    }
  }
}

TEST(DetectorSystemChurn, ReturningPingerDoesNotResetVersions) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);
  const NodeId pinger = system.pinglists().front().pinger;

  // Raise the pinger's version with churn, then make it vanish for a cycle.
  system.ApplyTopologyDelta(TopologyDelta::LinkDown(ft.AggCoreLink(0, 0, 0)));
  system.ApplyTopologyDelta(TopologyDelta::LinkUp(ft.AggCoreLink(0, 0, 0)));
  int raised = 0;
  for (const Pinglist& list : system.pinglists()) {
    if (list.pinger == pinger) {
      raised = list.version;
    }
  }
  system.watchdog().MarkDown(pinger);
  system.RecomputeCycle();  // pinger absent from this generation
  for (const Pinglist& list : system.pinglists()) {
    EXPECT_NE(list.pinger, pinger);
  }

  // On return, its version must land above the old high-water mark, not restart at 1.
  system.watchdog().MarkUp(pinger);
  system.RecomputeCycle();
  bool found = false;
  for (const Pinglist& list : system.pinglists()) {
    if (list.pinger == pinger) {
      found = true;
      EXPECT_GT(list.version, raised);
    }
  }
  EXPECT_TRUE(found);
}

TEST(DetectorSystemChurn, FixedMatrixRecomputeCycleRespectsOverlay) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  DetectorSystem system(ft.topology(), std::move(matrix), DetectorSystemOptions{});

  const LinkId victim = ft.AggCoreLink(0, 1, 0);
  const auto down = system.ApplyTopologyDelta(TopologyDelta::LinkDown(victim));
  // A mid-outage rebuild must not resurrect entries over the dead link...
  system.RecomputeCycle();
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      EXPECT_EQ(std::count(entry.route.begin(), entry.route.end(), victim), 0);
    }
  }
  // ...and the later link-up must restore each withdrawn entry exactly once (no duplicates).
  const auto up = system.ApplyTopologyDelta(TopologyDelta::LinkUp(victim));
  EXPECT_EQ(up.entries_added, down.entries_removed);
  std::map<std::pair<NodeId, PathId>, int> entry_count;
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      if (entry.path_id >= 0) {
        const int count = ++entry_count[std::make_pair(list.pinger, entry.path_id)];
        EXPECT_EQ(count, 1) << "duplicate entry for path " << entry.path_id << " on pinger "
                            << list.pinger;
      }
    }
  }
}

TEST(DetectorSystemChurn, RunWindowWithChurnAppliesMidWindowEvents) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 2;
  options.pmc.beta = 1;
  options.controller.packets_per_second = 50;
  DetectorSystem system(routing, options);

  const LinkId flapper = ft.AggCoreLink(3, 1, 1);
  std::vector<ChurnEvent> churn;
  churn.push_back(ChurnEvent{10.0, TopologyDelta::LinkDown(flapper)});
  churn.push_back(ChurnEvent{20.0, TopologyDelta::LinkUp(flapper)});
  churn.push_back(ChurnEvent{45.0, TopologyDelta::LinkDown(flapper)});  // beyond the window

  FailureScenario healthy;
  Rng rng(11);
  const auto window = system.RunWindowWithChurn(healthy, churn, rng);
  EXPECT_EQ(window.churn_events_applied, 2u);
  EXPECT_GT(window.probes_sent, 0);
  EXPECT_EQ(system.overlay().NumDeadLinks(), 0u);  // the flap recovered inside the window
  EXPECT_TRUE(system.incremental()->AlphaSatisfied());
}

TEST(DetectorSystemChurn, MultiWindowTraceViaWindowSlice) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  DetectorSystemOptions options;
  options.pmc.alpha = 1;
  options.pmc.beta = 1;
  DetectorSystem system(routing, options);

  ChurnOptions churn_options;
  churn_options.link_events_per_minute = 6.0;
  churn_options.node_events_per_minute = 0.0;
  churn_options.mean_outage_seconds = 20.0;
  const ChurnGenerator gen(ft.topology(), churn_options);
  Rng rng(13);
  const auto trace = gen.Sample(120.0, rng);
  ASSERT_FALSE(trace.empty());

  // Consecutive 30 s windows consume the whole trace (including recoveries landing after the
  // sampling horizon); every event lands exactly once.
  const FailureScenario healthy;
  const int windows = static_cast<int>(trace.back().time_seconds / 30.0) + 1;
  size_t applied = 0;
  for (int w = 0; w < windows; ++w) {
    const auto slice = WindowSlice(trace, w * 30.0, (w + 1) * 30.0);
    const auto window = system.RunWindowWithChurn(healthy, slice, rng);
    EXPECT_EQ(window.churn_events_applied, slice.size());
    applied += window.churn_events_applied;
  }
  EXPECT_EQ(applied, trace.size());
  // The trace is self-restoring, so after all slices the overlay is clean and repaired.
  EXPECT_EQ(system.overlay().NumDeadLinks(), 0u);
  EXPECT_TRUE(system.incremental()->AlphaSatisfied());
}

TEST(DetectorSystemChurn, FixedMatrixServerChurnKeepsAlphaSatisfied) {
  // A downed server kills its (unmonitored) rack link; that is no coverage hole for a matrix
  // over inter-switch links, so alpha_satisfied must stay true in fixed-matrix mode.
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  DetectorSystem system(ft.topology(), std::move(matrix), DetectorSystemOptions{});
  const NodeId down = system.pinglists().front().pinger;
  const auto result = system.ApplyTopologyDelta(TopologyDelta::NodeDown(down));
  EXPECT_GT(result.links_gone_dead, 0u);  // the server's rack link died
  EXPECT_TRUE(result.repair.alpha_satisfied);
}

TEST(DetectorSystemChurn, FixedMatrixModeDegradesGracefully) {
  const FatTree ft(4);
  const FatTreeRouting routing(ft);
  PmcOptions pmc;
  pmc.alpha = 1;
  pmc.beta = 1;
  ProbeMatrix matrix = BuildProbeMatrix(routing, PathEnumMode::kFull, pmc).matrix;
  DetectorSystemOptions options;
  DetectorSystem system(ft.topology(), std::move(matrix), options);
  EXPECT_EQ(system.incremental(), nullptr);

  const LinkId victim = ft.AggCoreLink(0, 1, 0);
  const auto down = system.ApplyTopologyDelta(TopologyDelta::LinkDown(victim));
  EXPECT_GT(down.entries_removed, 0u);
  EXPECT_FALSE(down.repair.alpha_satisfied);  // no repair without a candidate set
  for (const Pinglist& list : system.pinglists()) {
    for (const PinglistEntry& entry : list.entries) {
      EXPECT_EQ(std::count(entry.route.begin(), entry.route.end(), victim), 0);
    }
  }
  const auto up = system.ApplyTopologyDelta(TopologyDelta::LinkUp(victim));
  EXPECT_EQ(up.entries_added, down.entries_removed);  // withdrawn entries restored
}

}  // namespace
}  // namespace detector
